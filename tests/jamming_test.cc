// Reactive jamming adversary + SlotSwapper schedule randomization:
//   - JammerConfig / ReactiveJammerConfig construction-time validation,
//   - the reactive jammer's learning loop (histogram -> top-K jam set),
//     its determinism, and the epoch catch-up that keeps the slot engine
//     (which skips idle slots) in lockstep with the polled driver,
//   - per-jammer reachable-cell masks: paper-scale layouts bit-identical
//     to the unmasked sum, city-scale far listeners exactly 0 mW,
//   - SlotSwapper permutation properties across all three suites: accepted
//     permutations stay bijective, keep the installed schedules equal to
//     base-frame-composed-with-permutation, and preserve route precedence;
//     the invariant monitor stays clean through 20 consecutive swap epochs
//     under 40 ppm drift plus a crash/recover fault script,
//   - shard/thread bit-identity with reactive jammers and randomization on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <limits>
#include <vector>

#include "core/fault_script.h"
#include "core/invariant_monitor.h"
#include "core/network.h"
#include "phy/jammer.h"
#include "phy/medium.h"
#include "phy/reactive_jammer.h"
#include "sched/conflict_analysis.h"
#include "sched/slot_swapper.h"
#include "testbed/experiment.h"
#include "testbed/layouts.h"

namespace digs {
namespace {

// --- config validation ---

TEST(JammerConfigValidation, WifiBlockStartClampedToValidBlocks) {
  JammerConfig config;
  config.wifi_block_start = 99;
  EXPECT_EQ(sanitize_jammer_config(config).wifi_block_start, 12);
  config.wifi_block_start = -3;
  EXPECT_EQ(sanitize_jammer_config(config).wifi_block_start, 0);
  config.wifi_block_start = 7;
  EXPECT_EQ(sanitize_jammer_config(config).wifi_block_start, 7);
}

TEST(JammerConfigValidation, TxPowerHandledAtConstruction) {
  JammerConfig config;
  config.tx_power_dbm = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(sanitize_jammer_config(config).tx_power_dbm, 10.0);
  config.tx_power_dbm = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(sanitize_jammer_config(config).tx_power_dbm, 10.0);
  config.tx_power_dbm = 500.0;
  EXPECT_DOUBLE_EQ(sanitize_jammer_config(config).tx_power_dbm, 36.0);
  config.tx_power_dbm = -120.0;
  EXPECT_DOUBLE_EQ(sanitize_jammer_config(config).tx_power_dbm, -60.0);
  // Negative dBm is a legitimate weak emitter (the experiment default).
  config.tx_power_dbm = -4.0;
  EXPECT_DOUBLE_EQ(sanitize_jammer_config(config).tx_power_dbm, -4.0);
}

TEST(JammerConfigValidation, NegativeDurationsClampToZero) {
  JammerConfig config;
  config.on_duration = SimDuration{-5};
  config.off_duration = SimDuration{-7};
  const JammerConfig clean = sanitize_jammer_config(config);
  EXPECT_EQ(clean.on_duration.us, 0);
  EXPECT_EQ(clean.off_duration.us, 0);
  // The Jammer itself constructs from the sanitized config.
  Jammer jammer(config, 1);
  EXPECT_EQ(jammer.config().on_duration.us, 0);
}

TEST(JammerConfigValidation, ReactiveConfigSanitized) {
  ReactiveJammerConfig config;
  config.period_slots = 0;
  config.epoch_slots = 0;
  config.top_k = 1'000'000;
  config.tx_power_dbm = std::numeric_limits<double>::quiet_NaN();
  config.sniff_threshold_dbm = std::numeric_limits<double>::quiet_NaN();
  ReactiveJammer jammer(config, 1);
  EXPECT_GE(jammer.config().period_slots, 1);
  EXPECT_GE(jammer.config().epoch_slots, jammer.config().period_slots);
  EXPECT_LE(jammer.config().top_k,
            static_cast<std::uint32_t>(jammer.config().period_slots) * 16u);
  EXPECT_DOUBLE_EQ(jammer.config().tx_power_dbm, 10.0);
  EXPECT_DOUBLE_EQ(jammer.config().sniff_threshold_dbm, -90.0);
}

// --- reactive jammer learning ---

// Feed a synthetic victim: one hot (slot offset, channel offset) pair every
// frame plus background on another pair, over one full learning epoch. The
// next epoch's jam set must contain the hot cells and nothing colder than
// them, identically for two jammers with the same seed.
TEST(ReactiveJammerTest, LearnsHotCellsDeterministically) {
  ReactiveJammerConfig config;
  config.period_slots = 10;
  config.epoch_slots = 40;  // 4 frames per epoch
  config.top_k = 2;
  config.sniff_threshold_dbm = -200.0;  // hears everything fed to it
  ReactiveJammer a(config, 42);
  ReactiveJammer b(config, 42);

  // Victim transmits every frame at slot offset 3 with channel offset 5,
  // and every second frame at slot offset 7 with channel offset 1.
  for (std::uint64_t slot = 0; slot < 80; ++slot) {
    ASSERT_TRUE(a.begin_slot(slot, SimTime{0}));
    ASSERT_TRUE(b.begin_slot(slot, SimTime{0}));
    const std::uint64_t offset = slot % 10;
    if (offset == 3) {
      const auto ch = static_cast<PhysicalChannel>((slot + 5) % 16);
      a.hear(slot, ch);
      b.hear(slot, ch);
    }
    if (offset == 7 && (slot / 10) % 2 == 0) {
      const auto ch = static_cast<PhysicalChannel>((slot + 1) % 16);
      a.hear(slot, ch);
      b.hear(slot, ch);
    }
  }
  EXPECT_GE(a.epochs_completed(), 1u);
  EXPECT_EQ(a.jam_cells(), 2u);
  EXPECT_GT(a.attempts_heard(), 0u);

  // The jam set targets the learned cells: slot offset 3 / channel offset 5
  // at any future frame, i.e. active on channel (slot + 5) % 16 in slots
  // with offset 3. The cold pair (offset 2, channel offset 9) is not hit.
  for (std::uint64_t slot = 80; slot < 90; ++slot) {
    const bool hot = slot % 10 == 3;
    EXPECT_EQ(a.active(static_cast<PhysicalChannel>((slot + 5) % 16), slot,
                       SimTime{0}),
              hot)
        << "slot " << slot;
    EXPECT_FALSE(a.active(static_cast<PhysicalChannel>((slot + 9) % 16), slot,
                          SimTime{0}))
        << "slot " << slot;
    // Same seed + same observations -> identical jam set everywhere.
    for (int ch = 0; ch < kNumChannels; ++ch) {
      EXPECT_EQ(a.active(static_cast<PhysicalChannel>(ch), slot, SimTime{0}),
                b.active(static_cast<PhysicalChannel>(ch), slot, SimTime{0}));
    }
  }
}

// The slot engine skips idle slots, so begin_slot can arrive with gaps
// spanning several epoch boundaries. Catch-up must roll every elapsed
// boundary: a jammer fed a sparse slot sequence agrees with one fed every
// slot (same epochs completed, same jam set), keeping engine and polled
// drivers bit-identical.
TEST(ReactiveJammerTest, EpochCatchUpMatchesStepwiseRollover) {
  ReactiveJammerConfig config;
  config.period_slots = 10;
  config.epoch_slots = 20;
  config.top_k = 3;
  ReactiveJammer dense(config, 9);
  ReactiveJammer sparse(config, 9);

  for (std::uint64_t slot = 0; slot < 100; ++slot) {
    dense.begin_slot(slot, SimTime{0});
    if (slot % 10 == 4) dense.hear(slot, static_cast<PhysicalChannel>(slot % 16));
  }
  // The sparse feed sees only the hearing slots (offset 4), jumping over
  // multiple epoch boundaries between calls.
  for (std::uint64_t slot = 4; slot < 100; slot += 10) {
    sparse.begin_slot(slot, SimTime{0});
    sparse.hear(slot, static_cast<PhysicalChannel>(slot % 16));
  }
  EXPECT_EQ(dense.epochs_completed(), sparse.epochs_completed());
  for (std::uint64_t slot = 100; slot < 120; ++slot) {
    for (int ch = 0; ch < kNumChannels; ++ch) {
      EXPECT_EQ(
          dense.active(static_cast<PhysicalChannel>(ch), slot, SimTime{0}),
          sparse.active(static_cast<PhysicalChannel>(ch), slot, SimTime{0}));
    }
  }
}

TEST(ReactiveJammerTest, SilentBeforeStartAndBeforeFirstEpoch) {
  ReactiveJammerConfig config;
  config.period_slots = 10;
  config.epoch_slots = 20;
  config.start = SimTime{5'000'000};  // 5 s
  ReactiveJammer jammer(config, 3);
  // Not yet listening: begin_slot refuses, nothing is ever active.
  EXPECT_FALSE(jammer.begin_slot(0, SimTime{0}));
  EXPECT_FALSE(jammer.active(0, 0, SimTime{0}));
  // Listening but still inside the first (pure learning) epoch.
  EXPECT_TRUE(jammer.begin_slot(600, SimTime{6'000'000}));
  jammer.hear(600, 0);
  EXPECT_EQ(jammer.jam_cells(), 0u);
  EXPECT_FALSE(jammer.active(0, 600, SimTime{6'000'000}));
}

// --- jammer cell masks ---

// Paper-scale deployment (Half Testbed A spans well under 3x3 grid cells):
// the masked jammer_mw must equal the plain unmasked sum over every jammer,
// for every listener — bit-identical, not approximately.
TEST(JammerMaskTest, PaperScaleMatchesUnmaskedSum) {
  const TestbedLayout layout = half_testbed_a();
  MediumConfig config = ExperimentRunner::default_medium_config();
  config.propagation.path_loss_exponent = layout.path_loss_exponent;
  Medium medium(config, layout.positions, 77);
  medium.build_reachability(layout.tx_power_dbm);
  for (std::size_t j = 0; j < layout.jammer_positions.size(); ++j) {
    JammerConfig jammer;
    jammer.position = layout.jammer_positions[j];
    jammer.tx_power_dbm = -4.0;
    jammer.pattern = JammerPattern::kConstant;
    medium.add_jammer(jammer);
  }
  const auto& prop = config.propagation;
  for (std::uint16_t i = 0; i < layout.num_nodes(); ++i) {
    const NodeId rx{i};
    double expected = 0.0;
    for (const Jammer& jammer : medium.jammers()) {
      if (!jammer.active(0, 17, SimTime{0})) continue;
      expected += jammer.received_power_mw(
          medium.position(rx), prop.path_loss_ref_db,
          prop.path_loss_exponent, prop.floor_penetration_db,
          prop.floor_height_m);
    }
    EXPECT_EQ(medium.jammer_mw(rx, 0, 17, SimTime{0}), expected)
        << "listener " << i;
    EXPECT_GT(expected, 0.0) << "listener " << i;
  }
}

// City-scale deployment with the spatial grid active: a listener beyond the
// jammer's reachable-cell mask receives EXACTLY 0 mW (uncoupled by model
// definition, like far transmitters), while a near listener still gets the
// full path-loss power.
TEST(JammerMaskTest, CityScaleFarListenerContributesExactlyZero) {
  // Corner-to-corner span of ~850 m at a shallow exponent: several grid
  // cells per axis, so the 3x3 coupling cutoff and the jammer masks are
  // genuinely exercised.
  MediumConfig config = ExperimentRunner::default_medium_config();
  config.propagation.path_loss_exponent = 3.5;
  std::vector<Position> positions;
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) {
      positions.push_back({x * 150.0, y * 150.0, 0.0});
    }
  }
  Medium medium(config, positions, 5);
  medium.build_reachability(0.0);
  ASSERT_TRUE(medium.grid().active())
      << "layout too small to activate the spatial grid";

  JammerConfig jammer;
  jammer.position = {0.0, 0.0, 0.0};
  jammer.tx_power_dbm = -4.0;
  jammer.pattern = JammerPattern::kConstant;
  medium.add_jammer(jammer);

  ReactiveJammerConfig sniffer;
  sniffer.position = {0.0, 0.0, 0.0};
  sniffer.tx_power_dbm = -4.0;
  medium.add_reactive_jammer(sniffer);

  const NodeId near{0};      // at the jammer corner
  const NodeId far{24};      // opposite corner, ~850 m away
  const auto& prop = config.propagation;
  EXPECT_EQ(medium.jammer_mw(near, 0, 17, SimTime{0}),
            path_loss_power_mw(jammer.position, medium.position(near), -4.0,
                               prop.path_loss_ref_db,
                               prop.path_loss_exponent,
                               prop.floor_penetration_db,
                               prop.floor_height_m));
  EXPECT_EQ(medium.jammer_mw(far, 0, 17, SimTime{0}), 0.0);
}

// --- SlotSwapper unit properties ---

TEST(SlotSwapperTest, PermutationsStayBijectiveAndPreservePrecedence) {
  SlotSwapperConfig config;
  config.frame_len = 151;
  config.swaps_per_epoch = 48;
  std::vector<PrecedenceEdge> edges;
  // child at offsets {10, 20}, parent forwards at {50, 120}: the base
  // ordering (10 < 120) must survive every accepted permutation.
  edges.push_back({{10, 20}, {50, 120}});
  edges.push_back({{3}, {4}});  // tight pair: rejects most swaps touching it
  SlotSwapper swapper(config);
  for (std::uint64_t epoch = 0; epoch < 12; ++epoch) {
    const std::vector<std::uint16_t>& perm =
        swapper.advance_epoch(epoch, edges);
    EXPECT_TRUE(is_slot_permutation(perm)) << "epoch " << epoch;
    EXPECT_TRUE(permutation_preserves_precedence(perm, edges))
        << "epoch " << epoch;
  }
  EXPECT_EQ(swapper.epochs(), 12u);
  EXPECT_GT(swapper.swaps_applied(), 0u);
  // Different epochs draw different permutations (else there is nothing to
  // randomize): compare two epochs' images of offset 0..150.
  const std::vector<std::uint16_t> last = swapper.permutation();
  const std::vector<std::uint16_t>& prev = swapper.advance_epoch(99, edges);
  EXPECT_NE(last, prev);
}

TEST(SlotSwapperTest, ImpossibleSwapsAreRejectedBounded) {
  // Every adjacent pair is precedence-constrained with zero slack, so any
  // transposition breaks some edge: all candidates must be rejected and
  // the permutation must fall back to identity.
  SlotSwapperConfig config;
  config.frame_len = 8;
  config.swaps_per_epoch = 16;
  config.max_retries = 4;
  std::vector<PrecedenceEdge> edges;
  for (std::uint16_t s = 0; s + 1 < 8; ++s) edges.push_back({{s}, {static_cast<std::uint16_t>(s + 1)}});
  SlotSwapper swapper(config);
  const std::vector<std::uint16_t>& perm = swapper.advance_epoch(0, edges);
  std::vector<std::uint16_t> identity(8);
  for (std::uint16_t s = 0; s < 8; ++s) identity[s] = s;
  EXPECT_EQ(perm, identity);
  EXPECT_EQ(swapper.swaps_applied(), 0u);
  // Bounded retries: at most swaps_per_epoch * max_retries rejections.
  EXPECT_LE(swapper.swaps_rejected(), 16u * 4u);
  EXPECT_GT(swapper.swaps_rejected(), 0u);
}

// --- network-level randomization properties ---

ExperimentConfig randomized_config(ProtocolSuite suite, std::uint64_t seed) {
  ExperimentConfig config;
  config.suite = suite;
  config.seed = seed;
  config.num_flows = 4;
  config.warmup = seconds(std::int64_t{60});
  config.duration = seconds(std::int64_t{60});
  config.stat_drain = seconds(std::int64_t{10});
  config.randomize_schedule = true;
  config.randomize_epoch = seconds(std::int64_t{15});
  config.randomize_seed = seed;
  config.monitor_invariants = true;
  return config;
}

// Across all three suites and two seeds: the network's epoch permutation is
// a bijection over the application slotframe, every installed application
// slotframe equals the scheduler's base frame composed with it, traffic
// still flows, and the invariant monitor records no schedule conflicts at
// any swap epoch.
TEST(ScheduleRandomizationTest, PermutationPropertiesAcrossSuites) {
  for (const ProtocolSuite suite :
       {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra,
        ProtocolSuite::kWirelessHart}) {
    for (const std::uint64_t seed : {1ull, 12ull}) {
      const TestbedLayout layout = half_testbed_a();
      ExperimentRunner runner(layout, randomized_config(suite, seed));
      const ExperimentResult result = runner.run();
      Network& net = runner.network();

      EXPECT_GE(result.swap_epochs, 2u) << to_string(suite);
      EXPECT_GT(result.swaps_applied, 0u) << to_string(suite);
      EXPECT_GT(result.overall_pdr, 0.5) << to_string(suite);

      const std::vector<std::uint16_t>& perm = net.app_slot_permutation();
      ASSERT_FALSE(perm.empty()) << to_string(suite);
      EXPECT_TRUE(is_slot_permutation(perm)) << to_string(suite);

      // Installed schedule == base schedule with remapped slot offsets,
      // for every alive node holding an application frame.
      for (std::uint16_t i = 0; i < net.size(); ++i) {
        const Node& node = net.node(NodeId{i});
        if (!node.alive()) continue;
        const Slotframe* installed =
            node.mac().schedule().slotframe(TrafficClass::kApplication);
        const Slotframe& base = node.base_app_slotframe();
        if (installed == nullptr || base.cells.empty()) continue;
        ASSERT_EQ(installed->cells.size(), base.cells.size());
        ASSERT_EQ(base.length, perm.size());
        for (std::size_t c = 0; c < base.cells.size(); ++c) {
          Cell expected = base.cells[c];
          expected.slot_offset = perm[expected.slot_offset];
          EXPECT_EQ(installed->cells[c], expected)
              << to_string(suite) << " node " << i << " cell " << c;
        }
      }

      // Monitor: every swap epoch audited, none dirty, and no schedule
      // conflicts anywhere in the run.
      EXPECT_EQ(result.swap_epoch_audits, result.swap_epochs)
          << to_string(suite);
      EXPECT_EQ(result.swap_epoch_violations, 0u) << to_string(suite);
      if (result.swap_epoch_violations != 0) {
        for (const InvariantViolation& v :
             net.invariant_monitor()->violations()) {
          std::cerr << "violation " << to_string(v.kind) << " node "
                    << v.node.value << " other " << v.other.value << " at "
                    << v.at.us << "\n";
        }
      }
      const NetworkInvariantMonitor* monitor = net.invariant_monitor();
      ASSERT_NE(monitor, nullptr);
      EXPECT_EQ(monitor->count(InvariantKind::kScheduleConflict), 0u)
          << to_string(suite);
    }
  }
}

// Tunnel cells ride the same permutation: with multipath tunnels and a
// closed-loop control workload on, every installed tunnel cell must equal
// its base-frame counterpart with the slot offset remapped through the
// epoch permutation, and the monitor's tunnel invariants — loop-freedom,
// disjointness honesty, and replication conflict-freedom evaluated in the
// PERMUTED frame — must stay clean through every swap epoch.
TEST(ScheduleRandomizationTest, TunnelCellsSurviveSwapEpochs) {
  ExperimentConfig config = randomized_config(ProtocolSuite::kDigs, 17);
  config.enable_tunnels = true;
  config.control_loops = 2;
  const TestbedLayout layout = half_testbed_a();
  ExperimentRunner runner(layout, config);
  const ExperimentResult result = runner.run();
  Network& net = runner.network();

  EXPECT_GE(result.swap_epochs, 2u);
  EXPECT_GT(result.swaps_applied, 0u);
  EXPECT_EQ(result.swap_epoch_audits, result.swap_epochs);
  EXPECT_EQ(result.swap_epoch_violations, 0u);

  const std::vector<std::uint16_t>& perm = net.app_slot_permutation();
  ASSERT_FALSE(perm.empty());
  std::size_t tunnel_cells = 0;
  for (std::uint16_t i = 0; i < net.size(); ++i) {
    const Node& node = net.node(NodeId{i});
    if (!node.alive()) continue;
    const Slotframe* installed =
        node.mac().schedule().slotframe(TrafficClass::kApplication);
    const Slotframe& base = node.base_app_slotframe();
    if (installed == nullptr || base.cells.empty()) continue;
    ASSERT_EQ(installed->cells.size(), base.cells.size());
    for (std::size_t c = 0; c < base.cells.size(); ++c) {
      if (!base.cells[c].tunnel) continue;
      ++tunnel_cells;
      Cell expected = base.cells[c];
      expected.slot_offset = perm[expected.slot_offset];
      EXPECT_EQ(installed->cells[c], expected) << "node " << i << " cell "
                                               << c;
    }
  }
  EXPECT_GT(tunnel_cells, 0u);

  const NetworkInvariantMonitor* monitor = net.invariant_monitor();
  ASSERT_NE(monitor, nullptr);
  EXPECT_EQ(monitor->count(InvariantKind::kTunnelLoop), 0u);
  EXPECT_EQ(monitor->count(InvariantKind::kTunnelDisjoint), 0u);
  EXPECT_EQ(monitor->count(InvariantKind::kTunnelConflict), 0u);
  EXPECT_EQ(monitor->count(InvariantKind::kScheduleConflict), 0u);
}

// 20 consecutive swap epochs under 40 ppm oscillator drift plus a
// crash/recover fault script: the monitor must stay clean through every
// epoch (the reinstall path handles mid-run topology changes and drifted
// clocks without transient conflicts).
TEST(ScheduleRandomizationTest, TwentyEpochsUnderDriftAndFaults) {
  ExperimentConfig config = randomized_config(ProtocolSuite::kDigs, 21);
  config.randomize_epoch = seconds(std::int64_t{8});
  config.warmup = seconds(std::int64_t{60});
  config.duration = seconds(std::int64_t{110});  // 170 s total > 20 epochs
  config.clock_ppm = 40.0;
  config.faults.crash_cycle(seconds(std::int64_t{10}), NodeId{9},
                            seconds(std::int64_t{15}),
                            seconds(std::int64_t{25}), 2);
  const TestbedLayout layout = half_testbed_a();
  ExperimentRunner runner(layout, config);
  const ExperimentResult result = runner.run();
  EXPECT_GE(result.swap_epochs, 20u);
  EXPECT_EQ(result.swap_epoch_audits, result.swap_epochs);
  EXPECT_EQ(result.swap_epoch_violations, 0u);
  EXPECT_EQ(result.revivals, 2u);
  EXPECT_GT(result.overall_pdr, 0.5);
}

// --- shard/thread bit-identity with the full adversary + defense stack ---

struct JamSnapshot {
  ExperimentResult result;
  std::vector<std::uint16_t> perm;
};

JamSnapshot run_jammed(std::size_t shards, std::size_t threads) {
  ExperimentConfig config = randomized_config(ProtocolSuite::kDigs, 31);
  config.monitor_invariants = false;  // monitor forces the serial path
  config.num_reactive_jammers = 2;
  config.reactive_epoch_slots = 1510;
  config.jammer_start_after = seconds(std::int64_t{0});
  config.shards = shards;
  config.shard_threads = threads;
  ExperimentRunner runner(TestbedLayout{half_testbed_a()}, config);
  JamSnapshot snap;
  snap.result = runner.run();
  snap.perm = runner.network().app_slot_permutation();
  return snap;
}

TEST(JammingShardInvarianceTest, ReactiveJammerAndRandomizationBitIdentical) {
  const JamSnapshot serial = run_jammed(1, 1);
  // The adversary heard something and hit something; randomization ran.
  EXPECT_GT(serial.result.victim_tx_attempts, 0u);
  EXPECT_GT(serial.result.swap_epochs, 0u);
  for (const auto& [shards, threads] :
       {std::pair<std::size_t, std::size_t>{2, 2},
        std::pair<std::size_t, std::size_t>{4, 4}}) {
    const JamSnapshot sharded = run_jammed(shards, threads);
    EXPECT_EQ(sharded.result.generated, serial.result.generated);
    EXPECT_EQ(sharded.result.delivered, serial.result.delivered);
    EXPECT_EQ(sharded.result.flow_pdrs, serial.result.flow_pdrs);
    EXPECT_EQ(sharded.result.victim_tx_attempts,
              serial.result.victim_tx_attempts);
    EXPECT_EQ(sharded.result.victim_tx_jammed,
              serial.result.victim_tx_jammed);
    EXPECT_EQ(sharded.result.swap_epochs, serial.result.swap_epochs);
    EXPECT_EQ(sharded.result.swaps_applied, serial.result.swaps_applied);
    EXPECT_EQ(sharded.result.swaps_rejected, serial.result.swaps_rejected);
    EXPECT_EQ(sharded.perm, serial.perm);
  }
}

}  // namespace
}  // namespace digs
