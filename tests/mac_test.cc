// Unit tests for the TSCH MAC: slotframes, schedule combination by traffic
// priority (paper Section VI), channel hopping, queues, retransmission
// policy, join/sync behaviour, and shared-slot backoff.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.h"
#include "mac/hopping.h"
#include "mac/schedule.h"
#include "mac/tsch_mac.h"

namespace digs {
namespace {

// --- hopping ---

TEST(HoppingTest, CyclesThroughAllChannels) {
  std::set<PhysicalChannel> seen;
  for (std::uint64_t asn = 0; asn < 16; ++asn) {
    seen.insert(hop_channel(asn, 0));
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(HoppingTest, OffsetSeparatesChannels) {
  for (std::uint64_t asn = 0; asn < 100; ++asn) {
    EXPECT_NE(hop_channel(asn, 0), hop_channel(asn, 1));
  }
}

TEST(HoppingTest, WrapsAtSixteen) {
  EXPECT_EQ(hop_channel(0, 0), hop_channel(16, 0));
  EXPECT_EQ(hop_channel(5, 15), hop_channel(5 + 16, 15));
}

// --- schedule combination & occupancy ---

Slotframe make_slotframe(TrafficClass traffic, std::uint16_t length,
                         std::vector<std::uint16_t> tx_slots) {
  Slotframe frame;
  frame.traffic = traffic;
  frame.length = length;
  for (const auto slot : tx_slots) {
    Cell cell;
    cell.slot_offset = slot;
    cell.option = CellOption::kTx;
    cell.traffic = traffic;
    frame.cells.push_back(cell);
  }
  return frame;
}

TEST(ScheduleTest, EmptyScheduleNoCells) {
  Schedule schedule;
  EXPECT_TRUE(schedule.active_cells(0).empty());
  EXPECT_EQ(schedule.total_cells(), 0u);
}

TEST(ScheduleTest, SingleSlotframeRepeats) {
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kApplication, 7, {3}));
  EXPECT_TRUE(schedule.active_cells(0).empty());
  EXPECT_EQ(schedule.active_cells(3).size(), 1u);
  EXPECT_EQ(schedule.active_cells(10).size(), 1u);  // 10 % 7 == 3
  EXPECT_EQ(schedule.active_cells(17).size(), 1u);
}

TEST(ScheduleTest, PriorityCombination) {
  // Paper Fig. 7: sync wins over routing wins over application.
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kSync, 61, {0}));
  schedule.install(make_slotframe(TrafficClass::kRouting, 11, {0}));
  schedule.install(make_slotframe(TrafficClass::kApplication, 7, {0}));
  // ASN 0: all three match; sync wins.
  EXPECT_EQ(schedule.active_cells(0).front().traffic, TrafficClass::kSync);
  // ASN 77 = 7*11: routing (77%11==0) and app (77%7==0) match, sync
  // (77%61==16) does not; routing wins.
  EXPECT_EQ(schedule.active_cells(77).front().traffic,
            TrafficClass::kRouting);
  // ASN 7: only application matches.
  EXPECT_EQ(schedule.active_cells(7).front().traffic,
            TrafficClass::kApplication);
}

TEST(ScheduleTest, SkippedDetection) {
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kSync, 61, {0}));
  schedule.install(make_slotframe(TrafficClass::kApplication, 7, {0}));
  EXPECT_TRUE(schedule.skipped(TrafficClass::kApplication, 0));
  EXPECT_FALSE(schedule.skipped(TrafficClass::kApplication, 7));
  EXPECT_FALSE(schedule.skipped(TrafficClass::kSync, 0));
}

TEST(ScheduleTest, NoTrafficConstantlyBlocked) {
  // Coprime lengths (61, 11, 7): every class gets unskipped slots within
  // one hyperperiod (the paper's "no traffic is constantly blocked").
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kSync, 61, {0}));
  schedule.install(make_slotframe(TrafficClass::kRouting, 11, {0}));
  schedule.install(make_slotframe(TrafficClass::kApplication, 7, {0}));
  int app_unskipped = 0;
  int routing_unskipped = 0;
  const std::uint64_t hyper = 61ULL * 11 * 7;
  for (std::uint64_t asn = 0; asn < hyper; ++asn) {
    if (!schedule.class_cells(TrafficClass::kApplication, asn).empty() &&
        !schedule.skipped(TrafficClass::kApplication, asn)) {
      ++app_unskipped;
    }
    if (!schedule.class_cells(TrafficClass::kRouting, asn).empty() &&
        !schedule.skipped(TrafficClass::kRouting, asn)) {
      ++routing_unskipped;
    }
  }
  EXPECT_GT(app_unskipped, 0);
  EXPECT_GT(routing_unskipped, 0);
}

Slotframe make_rx_slotframe(TrafficClass traffic, std::uint16_t length,
                            std::vector<std::uint16_t> rx_slots) {
  Slotframe frame;
  frame.traffic = traffic;
  frame.length = length;
  for (const auto slot : rx_slots) {
    Cell cell;
    cell.slot_offset = slot;
    cell.option = CellOption::kRx;
    cell.traffic = traffic;
    frame.cells.push_back(cell);
  }
  return frame;
}

TEST(ScheduleOccupancyTest, EmptyScheduleNeverOccupied) {
  Schedule schedule;
  EXPECT_EQ(schedule.next_occupied_asn(0, false), kNeverOccupied);
  EXPECT_EQ(schedule.next_occupied_asn(12345, true), kNeverOccupied);
}

TEST(ScheduleOccupancyTest, SingleCellAdvancesAndWraps) {
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kSync, 7, {3}));
  EXPECT_EQ(schedule.next_occupied_asn(0, false), 3u);
  EXPECT_EQ(schedule.next_occupied_asn(3, false), 3u);  // inclusive
  EXPECT_EQ(schedule.next_occupied_asn(4, false), 10u);  // wraps
  EXPECT_EQ(schedule.next_occupied_asn(700, false), 703u);
}

TEST(ScheduleOccupancyTest, MergesAllSlotframes) {
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kSync, 61, {50}));
  schedule.install(make_slotframe(TrafficClass::kRouting, 11, {4}));
  // From 0: routing offset 4 comes before sync offset 50.
  EXPECT_EQ(schedule.next_occupied_asn(0, false), 4u);
  EXPECT_EQ(schedule.next_occupied_asn(5, false), 15u);  // next routing hit
  // Exhaustive cross-check over a hyperperiod: the query must equal the
  // first asn with non-empty active_cells.
  std::uint64_t asn = 0;
  for (int hops = 0; hops < 100; ++hops) {
    const std::uint64_t next = schedule.next_occupied_asn(asn, false);
    for (std::uint64_t a = asn; a < next; ++a) {
      EXPECT_TRUE(schedule.active_cells(a).empty()) << "asn " << a;
    }
    EXPECT_FALSE(schedule.active_cells(next).empty()) << "asn " << next;
    asn = next + 1;
  }
}

TEST(ScheduleOccupancyTest, AppTxOnlySlotsSkippedWhenQueueIdle) {
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kApplication, 7, {2}));
  schedule.install(make_rx_slotframe(TrafficClass::kSync, 61, {9}));
  // Queue idle: the dedicated TX cell at offset 2 cannot cause activity.
  EXPECT_EQ(schedule.next_occupied_asn(0, true), 9u);
  // Queue non-empty: the TX cell counts again.
  EXPECT_EQ(schedule.next_occupied_asn(0, false), 2u);
  // RX cells listen unconditionally and are never skipped.
  Slotframe app_rx = make_rx_slotframe(TrafficClass::kApplication, 7, {5});
  app_rx.cells.front().option = CellOption::kRx;
  schedule.install(app_rx);  // replaces the TX-only app frame
  EXPECT_EQ(schedule.next_occupied_asn(0, true), 5u);
}

TEST(ScheduleOccupancyTest, SyncTxCellsNeverSkipped) {
  // EB transmissions do not depend on any queue; sync TX offsets count
  // even when the caller reports an idle application queue.
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kSync, 61, {8}));
  EXPECT_EQ(schedule.next_occupied_asn(0, true), 8u);
}

TEST(ScheduleOccupancyTest, ListenerFiresOnInstallAndRemove) {
  Schedule schedule;
  int notified = 0;
  schedule.set_occupancy_listener([&] { ++notified; });
  schedule.install(make_slotframe(TrafficClass::kSync, 61, {8}));
  EXPECT_EQ(notified, 1);
  schedule.install(make_slotframe(TrafficClass::kRouting, 11, {4}));
  EXPECT_EQ(notified, 2);
  schedule.remove(TrafficClass::kSync);
  EXPECT_EQ(notified, 3);
  EXPECT_EQ(schedule.next_occupied_asn(0, false), 4u);
}

TEST(ScheduleTest, ReinstallReplaces) {
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kApplication, 7, {1, 2, 3}));
  EXPECT_EQ(schedule.total_cells(), 3u);
  schedule.install(make_slotframe(TrafficClass::kApplication, 7, {5}));
  EXPECT_EQ(schedule.total_cells(), 1u);
  EXPECT_TRUE(schedule.active_cells(1).empty());
  EXPECT_EQ(schedule.active_cells(5).size(), 1u);
}

TEST(ScheduleTest, RemoveClass) {
  Schedule schedule;
  schedule.install(make_slotframe(TrafficClass::kSync, 61, {0}));
  schedule.remove(TrafficClass::kSync);
  EXPECT_TRUE(schedule.active_cells(0).empty());
  EXPECT_EQ(schedule.slotframe(TrafficClass::kSync), nullptr);
}

// --- TschMac ---

struct MacHarness {
  MacConfig config;
  std::vector<Frame> received;
  std::vector<std::pair<NodeId, bool>> tx_results;
  std::vector<DataPayload> drops;
  int synced_events = 0;
  int desynced_events = 0;
  std::unique_ptr<TschMac> mac;

  explicit MacHarness(NodeId id, bool is_ap = false, MacConfig cfg = {}) {
    config = cfg;
    TschMac::Callbacks callbacks;
    callbacks.on_frame = [this](const Frame& f, double, SimTime) {
      received.push_back(f);
    };
    callbacks.on_tx_result = [this](NodeId peer, FrameType, bool acked,
                                    SimTime) {
      tx_results.emplace_back(peer, acked);
    };
    callbacks.on_synced = [this](SimTime) { ++synced_events; };
    callbacks.on_desynced = [this](SimTime) { ++desynced_events; };
    callbacks.rank_provider = [] { return std::uint16_t{3}; };
    callbacks.on_data_dropped = [this](const DataPayload& p, DropReason,
                                       SimTime) { drops.push_back(p); };
    mac = std::make_unique<TschMac>(id, is_ap, config, Rng(42), callbacks);
  }
};

Frame eb_from(NodeId src, std::uint64_t asn = 0) {
  EbPayload payload;
  payload.asn = asn;
  payload.rank = 1;
  return make_frame(FrameType::kEnhancedBeacon, src, kNoNode, payload);
}

TEST(TschMacTest, AccessPointBornSynced) {
  MacHarness harness(NodeId{0}, /*is_ap=*/true);
  EXPECT_TRUE(harness.mac->synced());
}

TEST(TschMacTest, FieldDeviceScansUntilEb) {
  MacHarness harness(NodeId{5});
  EXPECT_FALSE(harness.mac->synced());
  const SlotPlan plan = harness.mac->plan_slot(0, SimTime{0});
  EXPECT_EQ(plan.kind, SlotPlan::Kind::kScan);
  harness.mac->on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0});
  EXPECT_TRUE(harness.mac->synced());
  EXPECT_EQ(harness.synced_events, 1);
}

TEST(TschMacTest, ScanRotatesChannels) {
  MacConfig config;
  config.scan_dwell_slots = 10;
  MacHarness harness(NodeId{5}, false, config);
  std::set<PhysicalChannel> channels;
  for (std::uint64_t asn = 0; asn < 160; ++asn) {
    channels.insert(harness.mac->plan_slot(asn, SimTime{0}).channel);
  }
  EXPECT_EQ(channels.size(), 16u);
}

TEST(TschMacTest, SyncTimeoutDesyncs) {
  MacConfig config;
  config.sync_timeout = seconds(static_cast<std::int64_t>(5));
  MacHarness harness(NodeId{5}, false, config);
  harness.mac->on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0});
  EXPECT_TRUE(harness.mac->synced());
  harness.mac->end_slot(100, SimTime{0} + seconds(static_cast<std::int64_t>(4)));
  EXPECT_TRUE(harness.mac->synced());
  harness.mac->end_slot(600, SimTime{0} + seconds(static_cast<std::int64_t>(6)));
  EXPECT_FALSE(harness.mac->synced());
  EXPECT_EQ(harness.desynced_events, 1);
}

TEST(TschMacTest, EbFromTimeSourceRefreshesSync) {
  MacConfig config;
  config.sync_timeout = seconds(static_cast<std::int64_t>(5));
  MacHarness harness(NodeId{5}, false, config);
  harness.mac->on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0});
  harness.mac->set_time_source(NodeId{0});
  harness.mac->on_receive(eb_from(NodeId{0}), -70.0, 400,
                          SimTime{0} + seconds(static_cast<std::int64_t>(4)));
  harness.mac->end_slot(600, SimTime{0} + seconds(static_cast<std::int64_t>(6)));
  EXPECT_TRUE(harness.mac->synced());  // refreshed at t=4s
}

TEST(TschMacTest, EbFromAnyNeighborRefreshesSync) {
  // Only routed nodes beacon, so any EB proves the network is alive and
  // refreshes the sync timeout (6TiSCH-style). Clock *corrections* are
  // stricter — only time-source frames re-anchor the offset (sync_test.cc).
  MacConfig config;
  config.sync_timeout = seconds(static_cast<std::int64_t>(5));
  MacHarness harness(NodeId{5}, false, config);
  harness.mac->on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0});
  harness.mac->set_time_source(NodeId{0});
  harness.mac->on_receive(eb_from(NodeId{9}), -70.0, 400,
                          SimTime{0} + seconds(static_cast<std::int64_t>(4)));
  harness.mac->end_slot(600, SimTime{0} + seconds(static_cast<std::int64_t>(6)));
  EXPECT_TRUE(harness.mac->synced());
  // And with no EBs at all the timeout still fires.
  harness.mac->end_slot(1200,
                        SimTime{0} + seconds(static_cast<std::int64_t>(12)));
  EXPECT_FALSE(harness.mac->synced());
}

// Installs a simple application slotframe with one TX cell to `peer` at
// slot 1 and an EB TX cell at slot 0 of a sync slotframe.
void install_simple_schedule(TschMac& mac, NodeId peer) {
  Slotframe sync;
  sync.traffic = TrafficClass::kSync;
  sync.length = 101;
  Cell eb;
  eb.slot_offset = 0;
  eb.option = CellOption::kTx;
  eb.traffic = TrafficClass::kSync;
  sync.cells.push_back(eb);
  mac.schedule().install(sync);

  Slotframe app;
  app.traffic = TrafficClass::kApplication;
  app.length = 10;
  for (int p = 1; p <= 3; ++p) {
    Cell tx;
    tx.slot_offset = static_cast<std::uint16_t>(p);
    tx.option = CellOption::kTx;
    tx.traffic = TrafficClass::kApplication;
    tx.peer = peer;
    tx.attempt = static_cast<std::uint8_t>(p);
    app.cells.push_back(tx);
  }
  mac.schedule().install(app);
}

TEST(TschMacTest, TransmitsEbInSyncSlot) {
  MacHarness harness(NodeId{0}, /*is_ap=*/true);
  install_simple_schedule(*harness.mac, NodeId{1});
  const SlotPlan plan = harness.mac->plan_slot(0, SimTime{0});
  EXPECT_EQ(plan.kind, SlotPlan::Kind::kTx);
  EXPECT_EQ(plan.frame.type, FrameType::kEnhancedBeacon);
  EXPECT_TRUE(plan.frame.is_broadcast());
  EXPECT_FALSE(plan.expects_ack);
  EXPECT_EQ(plan.frame.as<EbPayload>().rank, 3);  // from rank_provider
}

TEST(TschMacTest, DataWaitsInQueueUntilTxCell) {
  MacHarness harness(NodeId{0}, /*is_ap=*/true);
  install_simple_schedule(*harness.mac, NodeId{1});
  DataPayload payload;
  payload.flow = FlowId{1};
  payload.seq = 7;
  EXPECT_TRUE(harness.mac->enqueue_data(payload, SimTime{0}));
  // Slot 5: no cell -> sleep.
  EXPECT_EQ(harness.mac->plan_slot(5, SimTime{0}).kind,
            SlotPlan::Kind::kSleep);
  // Slot 1: TX cell.
  const SlotPlan plan = harness.mac->plan_slot(11, SimTime{0});
  EXPECT_EQ(plan.kind, SlotPlan::Kind::kTx);
  EXPECT_EQ(plan.frame.type, FrameType::kData);
  EXPECT_EQ(plan.frame.dst, NodeId{1});
  EXPECT_TRUE(plan.expects_ack);
  EXPECT_EQ(plan.frame.as<DataPayload>().seq, 7u);
}

TEST(TschMacTest, AckDequeuesPacket) {
  MacHarness harness(NodeId{0}, /*is_ap=*/true);
  install_simple_schedule(*harness.mac, NodeId{1});
  harness.mac->enqueue_data(DataPayload{}, SimTime{0});
  (void)harness.mac->plan_slot(1, SimTime{0});
  harness.mac->on_tx_outcome(true, 1, SimTime{0});
  EXPECT_EQ(harness.mac->app_queue_size(), 0u);
  ASSERT_EQ(harness.tx_results.size(), 1u);
  EXPECT_TRUE(harness.tx_results[0].second);
}

TEST(TschMacTest, NoAckRetriesThenDrops) {
  MacConfig config;
  config.max_data_transmissions = 4;
  MacHarness harness(NodeId{0}, /*is_ap=*/true, config);
  install_simple_schedule(*harness.mac, NodeId{1});
  harness.mac->enqueue_data(DataPayload{}, SimTime{0});
  int attempts = 0;
  for (std::uint64_t asn = 0; asn < 40 && harness.mac->app_queue_size() > 0;
       ++asn) {
    const SlotPlan plan = harness.mac->plan_slot(asn, SimTime{0});
    if (plan.kind == SlotPlan::Kind::kTx &&
        plan.frame.type == FrameType::kData) {
      ++attempts;
      harness.mac->on_tx_outcome(false, asn, SimTime{0});
    }
  }
  EXPECT_EQ(attempts, 4);
  EXPECT_EQ(harness.drops.size(), 1u);
  EXPECT_EQ(harness.mac->app_queue_size(), 0u);
}

TEST(TschMacTest, QueueOverflowDrops) {
  MacConfig config;
  config.app_queue_capacity = 2;
  MacHarness harness(NodeId{0}, /*is_ap=*/true, config);
  EXPECT_TRUE(harness.mac->enqueue_data(DataPayload{}, SimTime{0}));
  EXPECT_TRUE(harness.mac->enqueue_data(DataPayload{}, SimTime{0}));
  EXPECT_FALSE(harness.mac->enqueue_data(DataPayload{}, SimTime{0}));
  EXPECT_EQ(harness.drops.size(), 1u);
  EXPECT_EQ(harness.mac->app_queue_size(), 2u);
}

TEST(TschMacTest, JoinInReplacedNotDuplicated) {
  MacHarness harness(NodeId{0}, /*is_ap=*/true);
  JoinInPayload p1;
  p1.rank = 2;
  harness.mac->enqueue_routing(
      make_frame(FrameType::kJoinIn, NodeId{0}, kNoNode, p1));
  JoinInPayload p2;
  p2.rank = 3;
  harness.mac->enqueue_routing(
      make_frame(FrameType::kJoinIn, NodeId{0}, kNoNode, p2));
  EXPECT_EQ(harness.mac->routing_queue_size(), 1u);
}

TEST(TschMacTest, SharedSlotTransmitsRoutingFrame) {
  MacHarness harness(NodeId{0}, /*is_ap=*/true);
  Slotframe routing;
  routing.traffic = TrafficClass::kRouting;
  routing.length = 11;
  Cell shared;
  shared.slot_offset = 0;
  shared.option = CellOption::kShared;
  shared.traffic = TrafficClass::kRouting;
  routing.cells.push_back(shared);
  harness.mac->schedule().install(routing);

  // Without pending traffic the shared slot listens.
  EXPECT_EQ(harness.mac->plan_slot(0, SimTime{0}).kind, SlotPlan::Kind::kRx);

  harness.mac->enqueue_routing(
      make_frame(FrameType::kJoinIn, NodeId{0}, kNoNode, JoinInPayload{}));
  const SlotPlan plan = harness.mac->plan_slot(11, SimTime{0});
  EXPECT_EQ(plan.kind, SlotPlan::Kind::kTx);
  EXPECT_EQ(plan.frame.type, FrameType::kJoinIn);
  // Broadcast: done after one transmission.
  harness.mac->on_tx_outcome(false, 11, SimTime{0});
  EXPECT_EQ(harness.mac->routing_queue_size(), 0u);
}

TEST(TschMacTest, UnicastRoutingBacksOffAfterFailure) {
  MacHarness harness(NodeId{0}, /*is_ap=*/true);
  Slotframe routing;
  routing.traffic = TrafficClass::kRouting;
  routing.length = 1;  // shared slot every slot, for test speed
  Cell shared;
  shared.slot_offset = 0;
  shared.option = CellOption::kShared;
  shared.traffic = TrafficClass::kRouting;
  routing.cells.push_back(shared);
  harness.mac->schedule().install(routing);

  harness.mac->enqueue_routing(make_frame(
      FrameType::kJoinedCallback, NodeId{0}, NodeId{1},
      JoinedCallbackPayload{}));
  // First transmission fails -> backoff engaged: not every subsequent slot
  // may transmit.
  const SlotPlan first = harness.mac->plan_slot(0, SimTime{0});
  ASSERT_EQ(first.kind, SlotPlan::Kind::kTx);
  EXPECT_TRUE(first.expects_ack);
  harness.mac->on_tx_outcome(false, 0, SimTime{0});
  EXPECT_EQ(harness.mac->routing_queue_size(), 1u);  // retained for retry

  int tx_count = 0;
  for (std::uint64_t asn = 1; asn < 200 && harness.mac->routing_queue_size();
       ++asn) {
    const SlotPlan plan = harness.mac->plan_slot(asn, SimTime{0});
    if (plan.kind == SlotPlan::Kind::kTx) {
      ++tx_count;
      harness.mac->on_tx_outcome(false, asn, SimTime{0});
    }
  }
  // max_routing_transmissions = 8 total; 7 more after the first.
  EXPECT_EQ(tx_count, 7);
  EXPECT_EQ(harness.mac->routing_queue_size(), 0u);
}

TEST(TschMacTest, ResetToUnsyncedClearsRoutingState) {
  MacHarness harness(NodeId{5});
  harness.mac->on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0});
  harness.mac->enqueue_routing(
      make_frame(FrameType::kJoinIn, NodeId{5}, kNoNode, JoinInPayload{}));
  harness.mac->reset_to_unsynced(SimTime{100});
  EXPECT_FALSE(harness.mac->synced());
  EXPECT_EQ(harness.mac->routing_queue_size(), 0u);
  EXPECT_EQ(harness.desynced_events, 1);
}

TEST(TschMacTest, UnsyncedIgnoresNonEbFrames) {
  MacHarness harness(NodeId{5});
  harness.mac->on_receive(
      make_frame(FrameType::kJoinIn, NodeId{1}, kNoNode, JoinInPayload{}),
      -70.0, 0, SimTime{0});
  EXPECT_TRUE(harness.received.empty());
}

TEST(TschMacTest, UnjoinedNodeDoesNotBeacon) {
  // A synced-but-unrouted field device must not send EBs (joiners would
  // synchronize onto an island).
  MacHarness harness(NodeId{5});
  harness.mac->on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0});
  ASSERT_TRUE(harness.mac->synced());
  Slotframe sync;
  sync.traffic = TrafficClass::kSync;
  sync.length = 10;
  Cell eb;
  eb.slot_offset = 0;
  eb.option = CellOption::kTx;
  eb.traffic = TrafficClass::kSync;
  sync.cells.push_back(eb);
  harness.mac->schedule().install(sync);

  // rank_provider returns 3 by default (joined) -> beacons.
  EXPECT_EQ(harness.mac->plan_slot(0, SimTime{0}).kind, SlotPlan::Kind::kTx);

  // Unrouted (infinite rank) -> silent.
  TschMac::Callbacks callbacks;
  callbacks.rank_provider = [] { return kInfiniteRank; };
  TschMac unrouted(NodeId{6}, false, MacConfig{}, Rng(1), callbacks);
  unrouted.on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0});
  unrouted.schedule().install(sync);
  EXPECT_NE(unrouted.plan_slot(0, SimTime{0}).kind, SlotPlan::Kind::kTx);
}

TEST(TschMacTest, DownlinkAndUplinkPacketsMatchTheirCells) {
  MacHarness harness(NodeId{0}, /*is_ap=*/true);
  Slotframe app;
  app.traffic = TrafficClass::kApplication;
  app.length = 10;
  Cell up;
  up.slot_offset = 1;
  up.option = CellOption::kTx;
  up.traffic = TrafficClass::kApplication;
  up.peer = NodeId{1};
  up.attempt = 1;
  app.cells.push_back(up);
  Cell down;
  down.slot_offset = 2;
  down.option = CellOption::kTx;
  down.traffic = TrafficClass::kApplication;
  down.peer = NodeId{7};
  down.attempt = 1;
  down.downlink = true;
  app.cells.push_back(down);
  harness.mac->schedule().install(app);

  DataPayload command;
  command.final_dst = NodeId{9};
  harness.mac->enqueue_data(command, SimTime{0}, NodeId{7});  // downlink
  DataPayload report;
  harness.mac->enqueue_data(report, SimTime{0});  // uplink

  // Uplink cell at slot 1 must carry the uplink packet even though the
  // downlink packet is at the head of the queue.
  const SlotPlan at1 = harness.mac->plan_slot(1, SimTime{0});
  ASSERT_EQ(at1.kind, SlotPlan::Kind::kTx);
  EXPECT_EQ(at1.frame.dst, NodeId{1});
  EXPECT_FALSE(at1.frame.as<DataPayload>().is_downlink());
  harness.mac->on_tx_outcome(true, 1, SimTime{0});

  // Downlink cell carries the command.
  const SlotPlan at2 = harness.mac->plan_slot(2, SimTime{0});
  ASSERT_EQ(at2.kind, SlotPlan::Kind::kTx);
  EXPECT_EQ(at2.frame.dst, NodeId{7});
  EXPECT_TRUE(at2.frame.as<DataPayload>().is_downlink());
  harness.mac->on_tx_outcome(true, 2, SimTime{0});
  EXPECT_EQ(harness.mac->app_queue_size(), 0u);
}

TEST(TschMacTest, AttemptLadderPicksLowestAttemptCell) {
  MacHarness harness(NodeId{0}, /*is_ap=*/true);
  // Two TX cells at the same slot offset with different attempts: the MAC
  // must use the earlier attempt.
  Slotframe app;
  app.traffic = TrafficClass::kApplication;
  app.length = 5;
  for (int p : {3, 1}) {
    Cell tx;
    tx.slot_offset = 2;
    tx.option = CellOption::kTx;
    tx.traffic = TrafficClass::kApplication;
    tx.peer = NodeId{static_cast<std::uint16_t>(p)};  // peer encodes attempt
    tx.attempt = static_cast<std::uint8_t>(p);
    app.cells.push_back(tx);
  }
  harness.mac->schedule().install(app);
  harness.mac->enqueue_data(DataPayload{}, SimTime{0});
  const SlotPlan plan = harness.mac->plan_slot(2, SimTime{0});
  ASSERT_EQ(plan.kind, SlotPlan::Kind::kTx);
  EXPECT_EQ(plan.frame.dst, NodeId{1});
}

}  // namespace
}  // namespace digs
