// Unit tests for the centralized WirelessHART baseline: graph route
// computation, conflict-free central scheduling, and the Fig. 3 reaction
// time model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "manager/central_scheduler.h"
#include "manager/graph_router.h"
#include "manager/manager_model.h"

namespace digs {
namespace {

/// Line topology: AP(0) - 1 - 2 - 3 with unit costs, plus a cross link
/// 1-3 with cost 2.5 and a second AP linked to node 1.
TopologySnapshot line_topology() {
  TopologySnapshot topo;
  topo.num_nodes = 5;  // 0,1 APs; 2,3,4 devices
  topo.num_access_points = 2;
  topo.etx.assign(5, std::vector<double>(5, TopologySnapshot::kNoLink));
  auto link = [&](int a, int b, double cost) {
    topo.etx[a][b] = cost;
    topo.etx[b][a] = cost;
  };
  link(0, 2, 1.0);
  link(1, 2, 1.2);
  link(2, 3, 1.0);
  link(1, 3, 2.5);
  link(3, 4, 1.0);
  link(2, 4, 2.2);
  return topo;
}

TEST(GraphRouterTest, ComputesShortestCosts) {
  const auto result = compute_graph_routes(line_topology());
  EXPECT_TRUE(result.fully_connected());
  EXPECT_DOUBLE_EQ(result.routes[2].cost, 1.0);
  EXPECT_EQ(result.routes[2].best_parent, NodeId{0});
  EXPECT_DOUBLE_EQ(result.routes[3].cost, 2.0);
  EXPECT_EQ(result.routes[3].best_parent, NodeId{2});
  EXPECT_DOUBLE_EQ(result.routes[4].cost, 3.0);
}

TEST(GraphRouterTest, SecondParentsPointDownhill) {
  const auto topo = line_topology();
  const auto result = compute_graph_routes(topo);
  // Node 2's backup: AP1 (only other downhill neighbor).
  EXPECT_EQ(result.routes[2].second_best_parent, NodeId{1});
  // Node 3's backup: AP1 via the cross link.
  EXPECT_EQ(result.routes[3].second_best_parent, NodeId{1});
  // Node 4's backup: node 2 (cost 1.0 < cost(4)=3.0).
  EXPECT_EQ(result.routes[4].second_best_parent, NodeId{2});
}

TEST(GraphRouterTest, ApsHaveNoParents) {
  const auto result = compute_graph_routes(line_topology());
  EXPECT_FALSE(result.routes[0].best_parent.valid());
  EXPECT_EQ(result.routes[0].depth, 0);
  EXPECT_DOUBLE_EQ(result.routes[0].cost, 0.0);
}

TEST(GraphRouterTest, RoutesFormDag) {
  const auto topo = line_topology();
  const auto result = compute_graph_routes(topo);
  EXPECT_TRUE(routes_are_dag(topo, result));
}

TEST(GraphRouterTest, DisconnectedNodeReported) {
  TopologySnapshot topo;
  topo.num_nodes = 4;
  topo.num_access_points = 1;
  topo.etx.assign(4, std::vector<double>(4, TopologySnapshot::kNoLink));
  topo.etx[0][1] = topo.etx[1][0] = 1.0;
  // Nodes 2 and 3 are islands.
  const auto result = compute_graph_routes(topo);
  EXPECT_FALSE(result.fully_connected());
  EXPECT_EQ(result.unreachable.size(), 2u);
}

TEST(GraphRouterTest, DepthCountsHops) {
  const auto result = compute_graph_routes(line_topology());
  EXPECT_EQ(result.routes[2].depth, 1);
  EXPECT_EQ(result.routes[3].depth, 2);
  EXPECT_EQ(result.routes[4].depth, 3);
}

TEST(GraphRouterTest, DagDetectsCycle) {
  // Hand-build a cyclic "result" to prove the checker sees it.
  TopologySnapshot topo = line_topology();
  GraphRoutingResult result = compute_graph_routes(topo);
  result.routes[2].second_best_parent = NodeId{3};  // 2->3 and 3->2
  result.routes[3].best_parent = NodeId{2};
  EXPECT_FALSE(routes_are_dag(topo, result));
}

TEST(GraphRouterTest, RandomTopologiesAlwaysDag) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    TopologySnapshot topo;
    topo.num_nodes = 30;
    topo.num_access_points = 2;
    topo.etx.assign(30, std::vector<double>(30, TopologySnapshot::kNoLink));
    for (int a = 0; a < 30; ++a) {
      for (int b = a + 1; b < 30; ++b) {
        if (rng.chance(0.25)) {
          const double cost = rng.uniform(1.0, 3.0);
          topo.etx[a][b] = cost;
          topo.etx[b][a] = cost;
        }
      }
    }
    const auto result = compute_graph_routes(topo);
    EXPECT_TRUE(routes_are_dag(topo, result)) << "trial " << trial;
    // Every reachable device must also have a backup whenever any downhill
    // neighbor exists (WirelessHART's two-outgoing-paths requirement is
    // best-effort in sparse graphs, so only check consistency).
    for (std::uint16_t v = 2; v < 30; ++v) {
      const GraphRoute& route = result.routes[v];
      if (route.second_best_parent.valid()) {
        EXPECT_NE(route.second_best_parent, route.best_parent);
      }
    }
  }
}

// --- central scheduler ---

TEST(CentralSchedulerTest, SchedulesAllAttempts) {
  const auto topo = line_topology();
  const auto routes = compute_graph_routes(topo);
  const std::vector<CentralFlow> flows{{FlowId{0}, NodeId{4}}};
  const auto schedule = compute_central_schedule(topo, routes, flows);
  // Node 4 is 3 hops deep: 3 hops x 3 attempts = 9 cells.
  EXPECT_EQ(schedule.cells.size(), 9u);
  EXPECT_TRUE(schedule.conflict_free());
}

TEST(CentralSchedulerTest, AttemptsUseBackupParent) {
  const auto topo = line_topology();
  const auto routes = compute_graph_routes(topo);
  const std::vector<CentralFlow> flows{{FlowId{0}, NodeId{3}}};
  const auto schedule = compute_central_schedule(topo, routes, flows);
  int backup_cells = 0;
  for (const ScheduledCell& cell : schedule.cells) {
    if (cell.attempt == 3) {
      ++backup_cells;
      if (cell.transmitter == NodeId{3}) {
        EXPECT_EQ(cell.receiver, routes.routes[3].second_best_parent);
      }
    }
  }
  EXPECT_GT(backup_cells, 0);
}

TEST(CentralSchedulerTest, MultipleFlowsConflictFree) {
  const auto topo = line_topology();
  const auto routes = compute_graph_routes(topo);
  const std::vector<CentralFlow> flows{
      {FlowId{0}, NodeId{4}}, {FlowId{1}, NodeId{3}}, {FlowId{2}, NodeId{2}}};
  const auto schedule = compute_central_schedule(topo, routes, flows);
  EXPECT_TRUE(schedule.conflict_free());
  EXPECT_GT(schedule.superframe_length, 0u);
}

TEST(CentralSchedulerTest, HopCausality) {
  const auto topo = line_topology();
  const auto routes = compute_graph_routes(topo);
  const std::vector<CentralFlow> flows{{FlowId{0}, NodeId{4}}};
  const auto schedule = compute_central_schedule(topo, routes, flows);
  // Along the primary path 4 -> 3 -> 2 -> AP, each hop's first cell must be
  // at or after the previous hop's last cell.
  std::uint32_t hop4_last = 0;
  std::uint32_t hop3_first = UINT32_MAX;
  for (const ScheduledCell& cell : schedule.cells) {
    if (cell.transmitter == NodeId{4}) {
      hop4_last = std::max(hop4_last, cell.slot);
    }
    if (cell.transmitter == NodeId{3}) {
      hop3_first = std::min(hop3_first, cell.slot);
    }
  }
  EXPECT_GT(hop3_first, hop4_last);
}

TEST(CentralSchedulerTest, UnreachableSourceSkipped) {
  TopologySnapshot topo;
  topo.num_nodes = 3;
  topo.num_access_points = 1;
  topo.etx.assign(3, std::vector<double>(3, TopologySnapshot::kNoLink));
  topo.etx[0][1] = topo.etx[1][0] = 1.0;
  const auto routes = compute_graph_routes(topo);
  const std::vector<CentralFlow> flows{{FlowId{0}, NodeId{2}}};
  const auto schedule = compute_central_schedule(topo, routes, flows);
  EXPECT_TRUE(schedule.cells.empty());
}

// --- reaction time model ---

TEST(GraphRouterTest, SingleAccessPointTopology) {
  TopologySnapshot topo;
  topo.num_nodes = 4;
  topo.num_access_points = 1;
  topo.etx.assign(4, std::vector<double>(4, TopologySnapshot::kNoLink));
  auto link = [&](int a, int b, double cost) {
    topo.etx[a][b] = topo.etx[b][a] = cost;
  };
  link(0, 1, 1.0);
  link(1, 2, 1.0);
  link(0, 2, 2.5);
  link(2, 3, 1.0);
  const auto result = compute_graph_routes(topo);
  EXPECT_TRUE(result.fully_connected());
  EXPECT_EQ(result.routes[1].best_parent, NodeId{0});
  EXPECT_EQ(result.routes[2].best_parent, NodeId{1});
  EXPECT_EQ(result.routes[2].second_best_parent, NodeId{0});
  // Node 3 has exactly one downhill neighbor: no backup possible.
  EXPECT_EQ(result.routes[3].best_parent, NodeId{2});
  EXPECT_FALSE(result.routes[3].second_best_parent.valid());
}

TEST(ManagerModelTest, FitReproducesAnchors) {
  const auto anchors = ManagerReactionModel::paper_anchors();
  const auto model = ManagerReactionModel::fit(anchors);
  for (const ManagerAnchor& anchor : anchors) {
    const auto predicted =
        model.predict(anchor.num_nodes, anchor.total_depth);
    EXPECT_NEAR(predicted.total_s(), anchor.measured_total_s,
                0.25 * anchor.measured_total_s)
        << anchor.num_nodes << " nodes";
  }
}

TEST(ManagerModelTest, ScalesWithNetworkSize) {
  const auto model =
      ManagerReactionModel::fit(ManagerReactionModel::paper_anchors());
  const double small = model.predict(20, 44).total_s();
  const double large = model.predict(50, 110).total_s();
  EXPECT_GT(large, 2.0 * small);  // paper: 203 s -> 506 s
}

TEST(ManagerModelTest, BreakdownNonNegative) {
  const auto model =
      ManagerReactionModel::fit(ManagerReactionModel::paper_anchors());
  const auto breakdown = model.predict(30, 70);
  EXPECT_GE(breakdown.collect_s, 0.0);
  EXPECT_GE(breakdown.compute_s, 0.0);
  EXPECT_GE(breakdown.disseminate_s, 0.0);
  EXPECT_NEAR(breakdown.total_s(),
              breakdown.collect_s + breakdown.compute_s +
                  breakdown.disseminate_s,
              1e-12);
}

TEST(ManagerModelTest, TotalDepthSumsDevices) {
  const auto routes = compute_graph_routes(line_topology());
  EXPECT_EQ(total_depth(routes, 2), 1 + 2 + 3);
}

}  // namespace
}  // namespace digs
