// Unit tests for frames, the paper's RSS->ETX mapping, the ETX estimator,
// and the neighbor table.
#include <gtest/gtest.h>

#include "net/etx.h"
#include "net/frame.h"
#include "net/neighbor_table.h"

namespace digs {
namespace {

// --- RSS -> ETX mapping (paper Section V) ---

TEST(EtxFromRssTest, PaperEndpoints) {
  EXPECT_DOUBLE_EQ(etx_from_rss(-50.0), 1.0);
  EXPECT_DOUBLE_EQ(etx_from_rss(-60.0), 1.0);
  EXPECT_DOUBLE_EQ(etx_from_rss(-90.0), 3.0);
  EXPECT_DOUBLE_EQ(etx_from_rss(-100.0), 3.0);
}

TEST(EtxFromRssTest, LinearInBetween) {
  EXPECT_DOUBLE_EQ(etx_from_rss(-75.0), 2.0);  // midpoint
  EXPECT_NEAR(etx_from_rss(-67.5), 1.5, 1e-12);
  EXPECT_NEAR(etx_from_rss(-82.5), 2.5, 1e-12);
}

TEST(EtxFromRssTest, MonotoneDecreasingInRss) {
  double last = 10.0;
  for (double rss = -100.0; rss <= -50.0; rss += 2.5) {
    const double etx = etx_from_rss(rss);
    EXPECT_LE(etx, last);
    last = etx;
  }
}

// --- ETX estimator ---

TEST(EtxEstimatorTest, UninitializedReportsCeiling) {
  EtxEstimator etx;
  EXPECT_FALSE(etx.initialized());
  EXPECT_DOUBLE_EQ(etx.value(), EtxConfig{}.etx_ceiling);
}

TEST(EtxEstimatorTest, SeedsFromRss) {
  EtxEstimator etx;
  etx.seed_from_rss(-75.0);
  EXPECT_TRUE(etx.initialized());
  EXPECT_DOUBLE_EQ(etx.value(), 2.0);
}

TEST(EtxEstimatorTest, SuccessPullsTowardsOne) {
  EtxEstimator etx;
  etx.seed_from_rss(-75.0);
  for (int i = 0; i < 100; ++i) etx.on_transmission(true);
  EXPECT_NEAR(etx.value(), 1.0, 0.01);
}

TEST(EtxEstimatorTest, FailuresPenalize) {
  EtxEstimator etx;
  etx.seed_from_rss(-60.0);
  const double before = etx.value();
  etx.on_transmission(false);
  EXPECT_GT(etx.value(), before);
}

TEST(EtxEstimatorTest, DeadLinkReachesCeiling) {
  EtxConfig config;
  EtxEstimator etx(config);
  etx.seed_from_rss(-90.0);
  for (int i = 0; i < 200; ++i) etx.on_transmission(false);
  EXPECT_DOUBLE_EQ(etx.value(), config.etx_ceiling);
}

TEST(EtxEstimatorTest, TracksDeliveryRatio) {
  // 50% delivery -> ETX ~2; stable, no oscillation (windowed ratio).
  EtxEstimator etx;
  etx.seed_from_rss(-70.0);
  for (int i = 0; i < 200; ++i) etx.on_transmission(i % 2 == 0);
  EXPECT_NEAR(etx.value(), 2.0, 0.3);
  const double a = etx.value();
  etx.on_transmission(true);
  etx.on_transmission(false);
  EXPECT_NEAR(etx.value(), a, 0.2);  // barely moves per sample
}

TEST(EtxEstimatorTest, RssSeedIgnoredAfterEnoughFeedback) {
  EtxEstimator etx;
  for (int i = 0; i < 20; ++i) etx.on_transmission(true);
  const double after_feedback = etx.value();
  etx.seed_from_rss(-90.0);
  EXPECT_DOUBLE_EQ(etx.value(), after_feedback);
}

// --- frames ---

TEST(FrameTest, BroadcastDetection) {
  const Frame eb = make_frame(FrameType::kEnhancedBeacon, NodeId{1}, kNoNode,
                              EbPayload{});
  EXPECT_TRUE(eb.is_broadcast());
  const Frame data =
      make_frame(FrameType::kData, NodeId{1}, NodeId{2}, DataPayload{});
  EXPECT_FALSE(data.is_broadcast());
}

TEST(FrameTest, DefaultSizes) {
  EXPECT_EQ(default_frame_bytes(FrameType::kData), FrameSizes::kData);
  EXPECT_EQ(default_frame_bytes(FrameType::kEnhancedBeacon),
            FrameSizes::kEnhancedBeacon);
  const Frame f = make_frame(FrameType::kJoinIn, NodeId{1}, kNoNode,
                             JoinInPayload{});
  EXPECT_EQ(f.length_bytes, FrameSizes::kJoinIn);
}

TEST(FrameTest, PayloadAccess) {
  JoinInPayload p;
  p.rank = 4;
  p.etxw = 3.25;
  const Frame f = make_frame(FrameType::kJoinIn, NodeId{9}, kNoNode, p);
  EXPECT_EQ(f.as<JoinInPayload>().rank, 4);
  EXPECT_DOUBLE_EQ(f.as<JoinInPayload>().etxw, 3.25);
  EXPECT_EQ(f.src, NodeId{9});
}

TEST(FrameTest, TypeNames) {
  EXPECT_STREQ(to_string(FrameType::kData), "DATA");
  EXPECT_STREQ(to_string(FrameType::kEnhancedBeacon), "EB");
}

// --- neighbor table ---

TEST(NeighborTableTest, HeardCreatesEntry) {
  NeighborTable table;
  table.on_heard(NodeId{3}, -70.0, 2, 1.5, SimTime{100});
  ASSERT_EQ(table.size(), 1u);
  const NeighborInfo* info = table.find(NodeId{3});
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->rank, 2);
  EXPECT_DOUBLE_EQ(info->advertised_etxw, 1.5);
  EXPECT_EQ(info->last_heard.us, 100);
  EXPECT_TRUE(info->etx.initialized());
}

TEST(NeighborTableTest, AccumulatedEtx) {
  NeighborTable table;
  table.on_heard(NodeId{3}, -60.0, 2, 1.5, SimTime{0});
  const NeighborInfo* info = table.find(NodeId{3});
  // link ETX seeded to 1.0 at -60 dBm, + advertised 1.5.
  EXPECT_NEAR(info->accumulated_etx(), 2.5, 0.2);
}

TEST(NeighborTableTest, UnheardNeighborInfiniteCost) {
  NeighborTable table;
  table.on_heard_rss(NodeId{4}, -70.0, SimTime{0});
  const NeighborInfo* info = table.find(NodeId{4});
  EXPECT_GE(info->accumulated_etx(), NeighborInfo::kInfiniteEtx);
}

TEST(NeighborTableTest, TransmissionTracksNoacks) {
  NeighborTable table;
  table.on_heard(NodeId{3}, -70.0, 2, 1.0, SimTime{0});
  table.on_transmission(NodeId{3}, false);
  table.on_transmission(NodeId{3}, false);
  EXPECT_EQ(table.find(NodeId{3})->consecutive_noacks, 2);
  table.on_transmission(NodeId{3}, true);
  EXPECT_EQ(table.find(NodeId{3})->consecutive_noacks, 0);
}

TEST(NeighborTableTest, TransmissionToUnknownIgnored) {
  NeighborTable table;
  table.on_transmission(NodeId{9}, false);  // no crash, no entry
  EXPECT_EQ(table.size(), 0u);
}

TEST(NeighborTableTest, RemoveErases) {
  NeighborTable table;
  table.on_heard(NodeId{1}, -70.0, 2, 1.0, SimTime{0});
  table.on_heard(NodeId{2}, -70.0, 2, 1.0, SimTime{0});
  table.remove(NodeId{1});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(NodeId{1}), nullptr);
  EXPECT_NE(table.find(NodeId{2}), nullptr);
}

TEST(NeighborTableTest, BestSelectsMinCost) {
  NeighborTable table;
  table.on_heard(NodeId{1}, -60.0, 2, 5.0, SimTime{0});
  table.on_heard(NodeId{2}, -60.0, 2, 1.0, SimTime{0});
  table.on_heard(NodeId{3}, -60.0, 2, 3.0, SimTime{0});
  const NeighborInfo* best = table.best(
      [](const NeighborInfo& n) { return n.accumulated_etx(); },
      [](const NeighborInfo&) { return false; });
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->id, NodeId{2});
}

TEST(NeighborTableTest, BestHonorsExclusion) {
  NeighborTable table;
  table.on_heard(NodeId{1}, -60.0, 2, 5.0, SimTime{0});
  table.on_heard(NodeId{2}, -60.0, 2, 1.0, SimTime{0});
  const NeighborInfo* best = table.best(
      [](const NeighborInfo& n) { return n.accumulated_etx(); },
      [](const NeighborInfo& n) { return n.id == NodeId{2}; });
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->id, NodeId{1});
}

TEST(NeighborTableTest, BestReturnsNullWhenAllExcluded) {
  NeighborTable table;
  table.on_heard(NodeId{1}, -60.0, 2, 5.0, SimTime{0});
  const NeighborInfo* best = table.best(
      [](const NeighborInfo& n) { return n.accumulated_etx(); },
      [](const NeighborInfo&) { return true; });
  EXPECT_EQ(best, nullptr);
}

TEST(NeighborTableTest, AdmissionRejectsWeakFirstContact) {
  NeighborTable table;  // default admission -89 dBm
  table.on_heard(NodeId{3}, -93.0, 2, 1.0, SimTime{0});
  EXPECT_EQ(table.size(), 0u);
  table.on_heard_rss(NodeId{4}, -92.0, SimTime{0});
  EXPECT_EQ(table.size(), 0u);
}

TEST(NeighborTableTest, AdmissionKeepsExistingEntries) {
  // A neighbor admitted at good RSS keeps being updated even when later
  // frames arrive faded below the admission threshold.
  NeighborTable table;
  table.on_heard(NodeId{3}, -70.0, 2, 1.0, SimTime{0});
  table.on_heard(NodeId{3}, -95.0, 3, 2.0, SimTime{10});
  const NeighborInfo* info = table.find(NodeId{3});
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->rank, 3);
  EXPECT_EQ(info->last_heard.us, 10);
}

TEST(NeighborTableTest, RssSmoothing) {
  NeighborTable table;
  table.on_heard_rss(NodeId{1}, -70.0, SimTime{0});
  table.on_heard_rss(NodeId{1}, -80.0, SimTime{1});
  const NeighborInfo* info = table.find(NodeId{1});
  EXPECT_LT(info->rss_dbm, -70.0);
  EXPECT_GT(info->rss_dbm, -80.0);
}

}  // namespace
}  // namespace digs
