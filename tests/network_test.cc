// Network-level tests: the slotted TSCH loop end to end — EB propagation
// and joining, ACK feedback, energy accounting, jammer impact, failure
// injection and recovery, duplicate suppression, and the hop limit.
#include <gtest/gtest.h>

#include "core/network.h"
#include "testbed/experiment.h"

namespace digs {
namespace {

std::vector<Position> line_positions(int devices, double spacing,
                                     double ap_gap = 8.0) {
  // Two APs at the head, then a ladder of devices: two per tier so every
  // hop has the redundancy the protocols are designed around, while the
  // tier spacing still forces genuine multi-hop routes.
  std::vector<Position> positions;
  positions.push_back({0.0, 0.0, 0.0});
  positions.push_back({ap_gap, 0.0, 0.0});
  for (int i = 0; i < devices; ++i) {
    const double x = ap_gap + spacing * (i / 2 + 1);
    const double y = (i % 2 == 0) ? -3.0 : 3.0;
    positions.push_back({x, y, 0.0});
  }
  return positions;
}

NetworkConfig base_config(ProtocolSuite suite = ProtocolSuite::kDigs,
                          std::uint64_t seed = 5) {
  NetworkConfig config;
  config.suite = suite;
  config.seed = seed;
  config.node = ExperimentRunner::default_node_config();
  config.node.mac.tx_power_dbm = 0.0;
  config.medium.propagation.path_loss_exponent = 3.8;
  return config;
}

TEST(NetworkTest, ApsBeaconFieldDevicesJoin) {
  Network net(base_config(), line_positions(3, 10.0));
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(120)));
  EXPECT_GT(net.node(NodeId{0}).mac().eb_sent(), 10u);
  for (std::uint16_t i = 2; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(NodeId{i}).mac().synced()) << "node " << i;
    EXPECT_TRUE(net.node(NodeId{i}).routing().joined()) << "node " << i;
  }
  EXPECT_EQ(net.joined_count(), 3u);
}

TEST(NetworkTest, MultiHopLadderDelivery) {
  // Three tiers of two devices, tier spacing beyond single-hop reach of
  // the APs: forced multi-hop with per-tier redundancy.
  Network net(base_config(), line_positions(6, 14.0));
  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{7};  // far tier
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(120));
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(300)));
  const double pdr = net.stats().pdr(FlowId{0});
  EXPECT_GT(pdr, 0.9);
  // The route is genuinely multi-hop.
  EXPECT_GE(net.node(NodeId{7}).routing().rank(), 3);
}

TEST(NetworkTest, DeliveredPacketsHavePositiveLatency) {
  Network net(base_config(), line_positions(2, 10.0));
  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{3};
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(90));
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(200)));
  const auto latencies = net.stats().latencies_ms();
  ASSERT_FALSE(latencies.empty());
  for (const double ms : latencies) {
    EXPECT_GT(ms, 0.0);
    // One application slotframe cycle is 1.51 s; a couple of cycles per
    // hop bounds any sane delivery.
    EXPECT_LT(ms, 30'000.0);
  }
}

TEST(NetworkTest, EnergyAccountsWholeRuntimePerNode) {
  Network net(base_config(), line_positions(3, 10.0));
  net.start();
  const auto runtime = seconds(static_cast<std::int64_t>(60));
  net.run_until(SimTime{0} + runtime);
  for (std::uint16_t i = 0; i < net.size(); ++i) {
    // Every alive node is metered for every slot (one slot lag allowed).
    EXPECT_NEAR(net.node(NodeId{i}).meter().total_time().seconds(),
                runtime.seconds(), 0.1)
        << "node " << i;
  }
}

TEST(NetworkTest, ScanningDominatesEnergyBeforeJoin) {
  Network net(base_config(), line_positions(3, 10.0));
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(2)));
  // Two seconds in, field devices are still scanning: radio on ~100%.
  const auto& meter = net.node(NodeId{4}).meter();
  EXPECT_GT(meter.duty_cycle(), 0.9);
}

TEST(NetworkTest, JoinedNodesSleepMostOfTheTime) {
  Network net(base_config(), line_positions(3, 10.0));
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(120)));
  net.reset_energy();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(240)));
  EXPECT_LT(net.mean_duty_cycle(), 0.10);  // TSCH low-power operation
}

TEST(NetworkTest, DeadNodeGoesSilent) {
  Network net(base_config(), line_positions(3, 10.0));
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(120)));
  const NodeId victim{3};
  net.set_node_alive(victim, false);
  const auto eb_before = net.node(victim).mac().eb_sent();
  const double energy_before = net.node(victim).meter().energy_mj();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(180)));
  EXPECT_EQ(net.node(victim).mac().eb_sent(), eb_before);
  EXPECT_DOUBLE_EQ(net.node(victim).meter().energy_mj(), energy_before);
}

TEST(NetworkTest, RevivedNodeRejoins) {
  Network net(base_config(), line_positions(3, 10.0));
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(120)));
  const NodeId victim{4};
  ASSERT_TRUE(net.node(victim).routing().joined());
  net.set_node_alive(victim, false);
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(180)));
  net.set_node_alive(victim, true);
  EXPECT_FALSE(net.node(victim).mac().synced());  // restarts cold
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(330)));
  EXPECT_TRUE(net.node(victim).mac().synced());
  EXPECT_TRUE(net.node(victim).routing().joined());
}

TEST(NetworkTest, ConstantJammerOnAllChannelsStopsNearbyTraffic) {
  NetworkConfig config = base_config();
  std::vector<Position> positions = line_positions(2, 10.0);
  Network net(config, positions);
  // Wideband constant jammer right on top of the only source, from t=150 s.
  JammerConfig jam;
  jam.position = positions[3];
  jam.tx_power_dbm = 0.0;
  jam.pattern = JammerPattern::kConstant;
  jam.start = SimTime{0} + seconds(static_cast<std::int64_t>(150));
  net.add_jammer(jam);

  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{3};
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(100));
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(240)));

  const SimTime jam_start = SimTime{0} + seconds(static_cast<std::int64_t>(150));
  const double before = net.stats().pdr(FlowId{0}, SimTime{0}, jam_start);
  const double during = net.stats().pdr(
      FlowId{0}, jam_start + seconds(static_cast<std::int64_t>(10)),
      SimTime{0} + seconds(static_cast<std::int64_t>(240)));
  EXPECT_GT(before, 0.9);
  EXPECT_LT(during, 0.2);
}

TEST(NetworkTest, DuplicateDeliveriesCountedOnce) {
  // Dense cluster: data may arrive via both parents or be retransmitted
  // after a lost ACK; PDR must never exceed 1.
  TestbedLayout layout;
  layout.num_access_points = 2;
  layout.positions = {{0, 0, 0}, {6, 0, 0}, {3, 4, 0}, {3, 8, 0}};
  ExperimentConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 8;
  config.num_flows = 2;
  config.flow_period = seconds(static_cast<std::int64_t>(1));
  config.warmup = seconds(static_cast<std::int64_t>(90));
  config.duration = seconds(static_cast<std::int64_t>(60));
  ExperimentRunner runner(layout, config);
  const ExperimentResult result = runner.run();
  EXPECT_LE(result.overall_pdr, 1.0 + 1e-12);
  for (const FlowRecord& flow : runner.network().stats().flows()) {
    std::uint64_t delivered = 0;
    for (const PacketRecord& packet : flow.packets) {
      if (packet.received()) ++delivered;
    }
    EXPECT_LE(delivered, flow.packets.size());
  }
}

TEST(NetworkTest, SameSeedSameEnergy) {
  const auto run_once = [] {
    Network net(base_config(ProtocolSuite::kDigs, 77),
                line_positions(3, 10.0));
    net.start();
    net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(90)));
    return net.total_energy_mj();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(NetworkTest, OrchestraAndDigsShareMacSubstrate) {
  // Same topology/seed under both suites: both form and deliver; this
  // guards the suite-switching plumbing, not link quality. The ladder links
  // sit in the gray region (exponent 3.8, 10 m tiers), so per-seed PDR
  // varies widely — seed sweeps show ~10% of seeds land below 0.8 under
  // Orchestra's contention slots. Assert majority delivery, which separates
  // "plumbing works" from "plumbing broken" (a wiring bug delivers ~0).
  for (const ProtocolSuite suite :
       {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra}) {
    Network net(base_config(suite), line_positions(3, 10.0));
    FlowSpec flow;
    flow.id = FlowId{0};
    flow.source = NodeId{4};
    flow.period = seconds(static_cast<std::int64_t>(2));
    flow.start_offset = seconds(static_cast<std::int64_t>(120));
    net.add_flow(flow);
    net.start();
    net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(220)));
    EXPECT_GT(net.stats().pdr(FlowId{0}), 0.5) << to_string(suite);
  }
}

TEST(NetworkTest, AsnAdvancesWithSlots) {
  Network net(base_config(), line_positions(1, 10.0));
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(10)));
  // 10 s / 10 ms = 1000 slots (first tick at t=10ms).
  EXPECT_NEAR(static_cast<double>(net.current_asn()), 1000.0, 2.0);
}

TEST(NetworkTest, FlowFromDeadSourceCountsAsLost) {
  Network net(base_config(), line_positions(2, 10.0));
  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{3};
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(100));
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(120)));
  net.set_node_alive(NodeId{3}, false);
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(180)));
  const double pdr_after = net.stats().pdr(
      FlowId{0}, SimTime{0} + seconds(static_cast<std::int64_t>(125)));
  EXPECT_DOUBLE_EQ(pdr_after, 0.0);
  EXPECT_GT(net.stats().total_generated(), 0u);
}

}  // namespace
}  // namespace digs
