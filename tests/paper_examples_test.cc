// Regression tests pinning the paper's two worked examples (the same
// scenarios examples/routing_example and examples/scheduling_example print
// interactively): Fig. 6's generated graph routes and Fig. 7's combined
// schedule must keep reproducing exactly.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "routing/digs_routing.h"
#include "sched/digs_scheduler.h"
#include "sim/simulator.h"

namespace digs {
namespace {

// ---------------------------------------------------------------------
// Fig. 6 — routing example: 2 APs + devices #3..#6.
// ---------------------------------------------------------------------

class Fig6Network {
 public:
  Fig6Network() {
    for (const std::uint16_t id : {0, 1, 3, 4, 5, 6}) {
      auto& node = nodes_[id];
      node.id = NodeId{id};
      RoutingProtocol::Env env;
      env.send_routing = [this, id](const Frame& frame) {
        nodes_[id].outbox.push_back(frame);
      };
      env.on_topology_changed = [](SimTime) {};
      DigsRoutingConfig config;
      config.trickle.imin = milliseconds(100);
      node.routing = std::make_unique<DigsRouting>(
          sim_, node.id, id < 2, node.table, config, Rng(id + 1), env);
      node.routing->start(sim_.now());
    }
  }

  /// Runs `rounds` one-second message-pump rounds over the Fig. 6 links.
  void pump(int rounds) {
    for (int round = 0; round < rounds; ++round) {
      sim_.run_until(sim_.now() + seconds(static_cast<std::int64_t>(1)));
      for (auto& [id, node] : nodes_) {
        std::vector<Frame> outbox;
        outbox.swap(node.outbox);
        for (const Frame& frame : outbox) {
          for (auto& [other_id, other] : nodes_) {
            if (other_id == id) continue;
            const double etx = link_etx(node.id, other.id);
            if (etx < 0.0) continue;
            if (!frame.is_broadcast() && frame.dst != other.id) continue;
            const double rss = -60.0 - (etx - 1.0) * 15.0;
            if (frame.type == FrameType::kJoinIn) {
              const auto& payload = frame.as<JoinInPayload>();
              other.table.on_heard(frame.src, rss, payload.rank,
                                   payload.etxw, sim_.now());
            } else {
              other.table.on_heard_rss(frame.src, rss, sim_.now());
            }
            other.routing->handle_frame(frame, rss, sim_.now());
          }
        }
      }
    }
  }

  [[nodiscard]] const DigsRouting& node(std::uint16_t id) {
    return *nodes_.at(id).routing;
  }

 private:
  struct ExampleNode {
    NodeId id;
    NeighborTable table;
    std::unique_ptr<DigsRouting> routing;
    std::vector<Frame> outbox;
  };

  static double link_etx(NodeId a, NodeId b) {
    static const std::map<std::pair<int, int>, double> kLinks = {
        {{5, 0}, 1.0}, {{5, 1}, 1.6}, {{6, 1}, 1.0},
        {{6, 0}, 1.8}, {{6, 5}, 1.2}, {{6, 4}, 1.0},
        {{5, 4}, 1.7}, {{4, 3}, 1.0}, {{5, 3}, 2.6},
    };
    const auto it = kLinks.find({std::max(a.value, b.value),
                                 std::min(a.value, b.value)});
    return it == kLinks.end() ? -1.0 : it->second;
  }

  Simulator sim_;
  std::map<std::uint16_t, ExampleNode> nodes_;
};

TEST(Fig6RoutingExample, ReproducesThePapersGraphRoutes) {
  Fig6Network net;
  net.pump(15);
  // Paper Section V-A: primary #3->#4->#6->AP2, #5->AP1;
  // backups #3->#5, #4->#5, #5->AP2, #6->AP1.
  EXPECT_EQ(net.node(5).best_parent(), NodeId{0});
  EXPECT_EQ(net.node(5).second_best_parent(), NodeId{1});
  EXPECT_EQ(net.node(5).rank(), 2);
  EXPECT_EQ(net.node(6).best_parent(), NodeId{1});
  EXPECT_EQ(net.node(6).second_best_parent(), NodeId{0});
  EXPECT_EQ(net.node(6).rank(), 2);
  EXPECT_EQ(net.node(4).best_parent(), NodeId{6});
  EXPECT_EQ(net.node(4).second_best_parent(), NodeId{5});
  EXPECT_EQ(net.node(4).rank(), 3);
  EXPECT_EQ(net.node(3).best_parent(), NodeId{4});
  EXPECT_EQ(net.node(3).second_best_parent(), NodeId{5});
  EXPECT_EQ(net.node(3).rank(), 4);
}

TEST(Fig6RoutingExample, EqualRankLinkNeverUsed) {
  Fig6Network net;
  net.pump(15);
  // "#5 and #6 have the same rank ... used to avoid loops"
  EXPECT_NE(net.node(5).best_parent(), NodeId{6});
  EXPECT_NE(net.node(5).second_best_parent(), NodeId{6});
  EXPECT_NE(net.node(6).best_parent(), NodeId{5});
  EXPECT_NE(net.node(6).second_best_parent(), NodeId{5});
}

// ---------------------------------------------------------------------
// Fig. 7 — scheduling example: slotframes 61/11/7, nodes #1..#4.
// ---------------------------------------------------------------------

SchedulerConfig fig7_config() {
  SchedulerConfig config;
  config.sync_slotframe_len = 61;
  config.routing_slotframe_len = 11;
  config.app_slotframe_len = 7;
  config.attempts = 3;
  return config;
}

Schedule build_node3_schedule() {
  // Paper numbering #3 = our id 2 (APs are #1/#2 = ids 0/1); its primary
  // parent is #1 (id 0) and backup #2 (id 1).
  DigsScheduler scheduler(fig7_config());
  Schedule schedule;
  RoutingView view;
  view.id = NodeId{2};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.second_best_parent = NodeId{1};
  scheduler.rebuild(schedule, view);
  return schedule;
}

TEST(Fig7SchedulingExample, HyperperiodIs4697Slots) {
  // "The combined schedule has 61 * 11 * 7 = 4697 time slots in total."
  const Schedule schedule = build_node3_schedule();
  for (std::uint64_t asn = 0; asn < 200; ++asn) {
    const auto a = schedule.active_cells(asn);
    const auto b = schedule.active_cells(asn + 4697);
    ASSERT_EQ(a.size(), b.size()) << asn;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << asn;
    }
  }
}

TEST(Fig7SchedulingExample, Node3UsesItsEq4Slots) {
  // Device #3 is the first field device: attempt slots 1, 2, 3; attempts
  // 1-2 towards #1 (primary), attempt 3 towards #2 (backup). (At ASN 2
  // the cell is preempted by #3's own EB slot — Fig. 7(e)'s combination —
  // so assert on the application class directly.)
  const Schedule schedule = build_node3_schedule();
  const auto app = [&](std::uint64_t asn) {
    return schedule.class_cells(TrafficClass::kApplication, asn);
  };
  ASSERT_FALSE(app(1).empty());
  EXPECT_EQ(app(1).front().peer, NodeId{0});
  ASSERT_FALSE(app(2).empty());
  EXPECT_EQ(app(2).front().peer, NodeId{0});
  EXPECT_TRUE(schedule.skipped(TrafficClass::kApplication, 2));  // EB wins
  ASSERT_FALSE(app(3).empty());
  EXPECT_EQ(app(3).front().peer, NodeId{1});
  // The active (priority-resolved) slot 1 really is the application cell.
  ASSERT_FALSE(schedule.active_cells(1).empty());
  EXPECT_EQ(schedule.active_cells(1).front().traffic,
            TrafficClass::kApplication);
}

TEST(Fig7SchedulingExample, CombinationResolvesByPriority) {
  const Schedule schedule = build_node3_schedule();
  // ASN 0: routing shared slot (asn%11==0) vs sync RX of parent #1
  // (slot 0 of the 61-frame): sync wins.
  ASSERT_FALSE(schedule.active_cells(0).empty());
  EXPECT_EQ(schedule.active_cells(0).front().traffic, TrafficClass::kSync);
  // ASN 11: routing slot, no sync conflict.
  ASSERT_FALSE(schedule.active_cells(11).empty());
  EXPECT_EQ(schedule.active_cells(11).front().traffic,
            TrafficClass::kRouting);
  // ASN 2: node #3's own EB slot (id 2).
  ASSERT_FALSE(schedule.active_cells(2).empty());
  EXPECT_EQ(schedule.active_cells(2).front().traffic, TrafficClass::kSync);
  EXPECT_EQ(schedule.active_cells(2).front().option, CellOption::kTx);
}

TEST(Fig7SchedulingExample, NoTrafficConstantlyBlockedOverHyperperiod) {
  const Schedule schedule = build_node3_schedule();
  int app = 0;
  int routing = 0;
  int sync = 0;
  for (std::uint64_t asn = 0; asn < 4697; ++asn) {
    const auto cells = schedule.active_cells(asn);
    if (cells.empty()) continue;
    switch (cells.front().traffic) {
      case TrafficClass::kSync: ++sync; break;
      case TrafficClass::kRouting: ++routing; break;
      case TrafficClass::kApplication: ++app; break;
    }
  }
  EXPECT_GT(sync, 0);
  EXPECT_GT(routing, 0);
  EXPECT_GT(app, 0);
}

}  // namespace
}  // namespace digs
