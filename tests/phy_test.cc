// Unit tests for the PHY substrate: geometry, propagation, PRR model,
// jammers, and the medium.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "phy/geometry.h"
#include "phy/jammer.h"
#include "phy/medium.h"
#include "phy/propagation.h"
#include "phy/prr.h"

namespace digs {
namespace {

// --- geometry ---

TEST(GeometryTest, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1, 1}, {1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {0, 0, 2}), 2.0);
}

TEST(GeometryTest, FloorsCrossed) {
  EXPECT_EQ(floors_crossed({0, 0, 0}, {0, 0, 0}), 0);
  EXPECT_EQ(floors_crossed({0, 0, 0}, {0, 0, 4.0}), 1);
  EXPECT_EQ(floors_crossed({0, 0, 0}, {0, 0, 8.0}), 2);
  EXPECT_EQ(floors_crossed({0, 0, 0}, {0, 0, 1.0}), 0);
}

// --- propagation ---

PropagationConfig quiet_config() {
  PropagationConfig config;
  config.shadowing_sigma_db = 0.0;
  config.channel_offset_sigma_db = 0.0;
  config.temporal_fading_sigma_db = 0.0;
  return config;
}

TEST(PropagationTest, PathLossMonotoneInDistance) {
  Propagation prop(quiet_config(), 1);
  double last = 1e9;
  for (double d = 1.0; d <= 100.0; d += 5.0) {
    const double rss = prop.mean_rss_dbm(0.0, NodeId{1}, NodeId{2},
                                         {0, 0, 0}, {d, 0, 0}, 0);
    EXPECT_LT(rss, last);
    last = rss;
  }
}

TEST(PropagationTest, ReferenceLoss) {
  Propagation prop(quiet_config(), 1);
  // At the reference distance the loss equals path_loss_ref_db.
  const double rss = prop.mean_rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                       {1.0, 0, 0}, 0);
  EXPECT_NEAR(rss, -40.0, 1e-9);
  // One decade further: +10*n dB of loss.
  const double rss10 = prop.mean_rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                         {10.0, 0, 0}, 0);
  EXPECT_NEAR(rss10, -40.0 - 30.0, 1e-9);
}

TEST(PropagationTest, TxPowerShiftsRss) {
  Propagation prop(quiet_config(), 1);
  const double at0 = prop.mean_rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                       {20, 0, 0}, 0);
  const double at10 = prop.mean_rss_dbm(10.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                        {20, 0, 0}, 0);
  EXPECT_NEAR(at10 - at0, 10.0, 1e-9);
}

TEST(PropagationTest, FloorPenetrationLoss) {
  Propagation prop(quiet_config(), 1);
  const double same = prop.mean_rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                        {10, 0, 0}, 0);
  const double other =
      prop.mean_rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                        {std::sqrt(100.0 - 16.0), 0, 4.0}, 0);
  // Same 3D distance, one floor boundary -> the configured slab loss.
  EXPECT_NEAR(same - other, PropagationConfig{}.floor_penetration_db, 1e-9);
}

TEST(PropagationTest, ShadowingIsSymmetricAndStatic) {
  PropagationConfig config;
  config.shadowing_sigma_db = 6.0;
  config.channel_offset_sigma_db = 0.0;
  config.temporal_fading_sigma_db = 0.0;
  Propagation prop(config, 99);
  const double ab = prop.mean_rss_dbm(0.0, NodeId{3}, NodeId{4}, {0, 0, 0},
                                      {15, 0, 0}, 2);
  const double ba = prop.mean_rss_dbm(0.0, NodeId{4}, NodeId{3}, {15, 0, 0},
                                      {0, 0, 0}, 2);
  EXPECT_DOUBLE_EQ(ab, ba);
  // Repeated queries identical (static draw).
  EXPECT_DOUBLE_EQ(ab, prop.mean_rss_dbm(0.0, NodeId{3}, NodeId{4}, {0, 0, 0},
                                         {15, 0, 0}, 2));
}

TEST(PropagationTest, ChannelOffsetsDifferAcrossChannels) {
  PropagationConfig config;
  config.shadowing_sigma_db = 0.0;
  config.channel_offset_sigma_db = 4.0;
  config.temporal_fading_sigma_db = 0.0;
  Propagation prop(config, 5);
  bool any_diff = false;
  const double base = prop.mean_rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                        {15, 0, 0}, 0);
  for (PhysicalChannel ch = 1; ch < kNumChannels; ++ch) {
    if (std::abs(prop.mean_rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                   {15, 0, 0}, ch) -
                 base) > 0.5) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(PropagationTest, TemporalFadingChangesAcrossCoherenceBlocks) {
  PropagationConfig config;
  config.shadowing_sigma_db = 0.0;
  config.channel_offset_sigma_db = 0.0;
  config.temporal_fading_sigma_db = 3.0;
  config.coherence_slots = 100;
  Propagation prop(config, 5);
  const double slot0 = prop.rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                    {15, 0, 0}, 0, 0);
  const double slot50 = prop.rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                     {15, 0, 0}, 0, 50);
  const double slot150 = prop.rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                      {15, 0, 0}, 0, 150);
  EXPECT_DOUBLE_EQ(slot0, slot50);  // same coherence block
  EXPECT_NE(slot0, slot150);        // different block
}

TEST(PropagationTest, FadingStatisticsMatchSigma) {
  PropagationConfig config;
  config.shadowing_sigma_db = 0.0;
  config.channel_offset_sigma_db = 0.0;
  config.temporal_fading_sigma_db = 2.0;
  config.coherence_slots = 1;
  Propagation prop(config, 5);
  const double mean = prop.mean_rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0},
                                        {15, 0, 0}, 0);
  Summary s;
  for (std::uint64_t slot = 0; slot < 5000; ++slot) {
    s.add(prop.rss_dbm(0.0, NodeId{1}, NodeId{2}, {0, 0, 0}, {15, 0, 0}, 0,
                       slot) -
          mean);
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

// --- PRR model ---

TEST(PrrTest, BerAtZeroSinrIsHalf) {
  EXPECT_DOUBLE_EQ(ieee802154_ber(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ieee802154_ber(-1.0), 0.5);
}

TEST(PrrTest, BerMonotoneDecreasing) {
  double last = 1.0;
  for (double db = -5.0; db <= 10.0; db += 0.5) {
    const double ber = ieee802154_ber(std::pow(10.0, db / 10.0));
    EXPECT_LE(ber, last + 1e-12);
    last = ber;
  }
}

TEST(PrrTest, PrrSigmoidShape) {
  // Far below threshold: ~0; far above: ~1.
  EXPECT_LT(ieee802154_prr(-5.0, 110), 0.01);
  EXPECT_GT(ieee802154_prr(10.0, 110), 0.999);
}

TEST(PrrTest, LongerFramesLowerPrr) {
  const double sinr = 2.0;
  EXPECT_GT(ieee802154_prr(sinr, 26), ieee802154_prr(sinr, 110));
}

TEST(PrrTest, TableMatchesExact) {
  PrrTable table(110);
  for (double db = -9.5; db < 19.5; db += 0.37) {
    EXPECT_NEAR(table.prr(db), ieee802154_prr(db, 110), 5e-3) << db;
  }
}

TEST(PrrTest, TableEdges) {
  PrrTable table(110);
  EXPECT_DOUBLE_EQ(table.prr(-20.0), 0.0);
  EXPECT_NEAR(table.prr(25.0), 1.0, 1e-9);
}

// --- jammer ---

TEST(JammerTest, InactiveBeforeStart) {
  JammerConfig config;
  config.start = SimTime{1'000'000};
  config.pattern = JammerPattern::kConstant;
  Jammer jammer(config, 1);
  EXPECT_FALSE(jammer.active(0, 0, SimTime{0}));
  EXPECT_TRUE(jammer.active(0, 200, SimTime{2'000'000}));
}

TEST(JammerTest, MacroDutyCycle) {
  JammerConfig config;
  config.pattern = JammerPattern::kConstant;
  config.on_duration = seconds(static_cast<std::int64_t>(300));
  config.off_duration = seconds(static_cast<std::int64_t>(300));
  Jammer jammer(config, 1);
  EXPECT_TRUE(jammer.active(0, 0, SimTime{0}));
  EXPECT_FALSE(
      jammer.active(0, 40000, SimTime{0} + seconds(static_cast<std::int64_t>(400))));
  EXPECT_TRUE(
      jammer.active(0, 65000, SimTime{0} + seconds(static_cast<std::int64_t>(650))));
}

TEST(JammerTest, WifiPatternAffectsOnlyItsBlock) {
  JammerConfig config;
  config.pattern = JammerPattern::kWifiStreaming;
  config.wifi_block_start = 4;
  Jammer jammer(config, 1);
  int in_block_hits = 0;
  int out_block_hits = 0;
  for (std::uint64_t slot = 0; slot < 2000; ++slot) {
    const SimTime t{static_cast<std::int64_t>(slot) * 10'000};
    if (jammer.active(5, slot, t)) ++in_block_hits;
    if (jammer.active(0, slot, t)) ++out_block_hits;
    if (jammer.active(12, slot, t)) ++out_block_hits;
  }
  EXPECT_GT(in_block_hits, 2000 / 2);  // streaming: most slots hit
  EXPECT_EQ(out_block_hits, 0);
}

TEST(JammerTest, BluetoothHitsAllChannelsSometimes) {
  JammerConfig config;
  config.pattern = JammerPattern::kBluetooth;
  Jammer jammer(config, 1);
  for (PhysicalChannel ch = 0; ch < kNumChannels; ++ch) {
    int hits = 0;
    for (std::uint64_t slot = 0; slot < 1000; ++slot) {
      if (jammer.active(ch, slot, SimTime{0})) ++hits;
    }
    EXPECT_GT(hits, 200) << static_cast<int>(ch);
    EXPECT_LT(hits, 500) << static_cast<int>(ch);
  }
}

TEST(JammerTest, ReceivedPowerFallsWithDistance) {
  JammerConfig config;
  config.position = {0, 0, 0};
  config.tx_power_dbm = 10.0;
  Jammer jammer(config, 1);
  const double near = jammer.received_power_mw({5, 0, 0}, 40, 3.0, 18, 4);
  const double far = jammer.received_power_mw({50, 0, 0}, 40, 3.0, 18, 4);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
}

// --- medium ---

Medium make_medium(double spacing, int nodes = 3) {
  MediumConfig config;
  config.propagation = quiet_config();
  std::vector<Position> positions;
  for (int i = 0; i < nodes; ++i) {
    positions.push_back({i * spacing, 0, 0});
  }
  return Medium(config, std::move(positions), 7);
}

TEST(MediumTest, CloseLinkDelivers) {
  Medium medium = make_medium(10.0);
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.channel = 3;
  tx.frame_bytes = 110;
  tx.tx_power_dbm = 0.0;
  const double p =
      medium.reception_probability(tx, NodeId{1}, 0, SimTime{0}, {});
  EXPECT_GT(p, 0.99);
}

TEST(MediumTest, FarLinkFails) {
  Medium medium = make_medium(200.0);
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.channel = 3;
  tx.frame_bytes = 110;
  const double p =
      medium.reception_probability(tx, NodeId{1}, 0, SimTime{0}, {});
  EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(MediumTest, SelfReceptionImpossible) {
  Medium medium = make_medium(10.0);
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  EXPECT_DOUBLE_EQ(
      medium.reception_probability(tx, NodeId{0}, 0, SimTime{0}, {}), 0.0);
}

TEST(MediumTest, CochannelInterferenceDegrades) {
  // Node 2 sits 4 m from receiver 1 while the wanted sender 0 is 10 m
  // away: SINR ~ -12 dB, so a co-channel transmission wrecks 0->1.
  MediumConfig config;
  config.propagation = quiet_config();
  Medium medium(config, {{0, 0, 0}, {10, 0, 0}, {14, 0, 0}}, 7);
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.channel = 3;
  tx.frame_bytes = 110;
  TransmissionAttempt other;
  other.sender = NodeId{2};
  other.channel = 3;
  other.frame_bytes = 110;
  const std::vector<TransmissionAttempt> concurrent{tx, other};
  const double clean =
      medium.reception_probability(tx, NodeId{1}, 0, SimTime{0}, {});
  const double interfered = medium.reception_probability(
      tx, NodeId{1}, 0, SimTime{0}, concurrent);
  EXPECT_GT(clean, 0.99);
  EXPECT_LT(interfered, 0.01);
}

TEST(MediumTest, DifferentChannelNoInterference) {
  Medium medium = make_medium(10.0);
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.channel = 3;
  tx.frame_bytes = 110;
  TransmissionAttempt other;
  other.sender = NodeId{2};
  other.channel = 7;  // different channel
  const std::vector<TransmissionAttempt> concurrent{tx, other};
  const double p = medium.reception_probability(tx, NodeId{1}, 0, SimTime{0},
                                                concurrent);
  EXPECT_GT(p, 0.99);
}

TEST(MediumTest, JammerKillsNearbyLink) {
  Medium medium = make_medium(10.0);
  JammerConfig jam;
  jam.position = {10.0, 2.0, 0};  // right next to receiver 1
  jam.tx_power_dbm = 10.0;
  jam.pattern = JammerPattern::kConstant;
  medium.add_jammer(jam);
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.channel = 3;
  tx.frame_bytes = 110;
  const double p =
      medium.reception_probability(tx, NodeId{1}, 0, SimTime{0}, {});
  EXPECT_LT(p, 0.01);
}

TEST(MediumTest, JammerBeforeStartHarmless) {
  Medium medium = make_medium(10.0);
  JammerConfig jam;
  jam.position = {10.0, 2.0, 0};
  jam.tx_power_dbm = 10.0;
  jam.pattern = JammerPattern::kConstant;
  jam.start = SimTime{10'000'000};
  medium.add_jammer(jam);
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.channel = 3;
  tx.frame_bytes = 110;
  EXPECT_GT(medium.reception_probability(tx, NodeId{1}, 0, SimTime{0}, {}),
            0.99);
}

TEST(JammerTest, ConstantPatternCoversAllChannels) {
  JammerConfig config;
  config.pattern = JammerPattern::kConstant;
  Jammer jammer(config, 3);
  for (PhysicalChannel ch = 0; ch < kNumChannels; ++ch) {
    EXPECT_TRUE(jammer.active(ch, 123, SimTime{500'000}));
  }
}

TEST(MediumTest, ClearJammersRestoresLink) {
  Medium medium = make_medium(10.0);
  JammerConfig jam;
  jam.position = {10.0, 2.0, 0};
  jam.tx_power_dbm = 10.0;
  jam.pattern = JammerPattern::kConstant;
  medium.add_jammer(jam);
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.channel = 3;
  tx.frame_bytes = 110;
  ASSERT_LT(medium.reception_probability(tx, NodeId{1}, 0, SimTime{0}, {}),
            0.01);
  medium.clear_jammers();
  EXPECT_EQ(medium.num_jammers(), 0u);
  EXPECT_GT(medium.reception_probability(tx, NodeId{1}, 0, SimTime{0}, {}),
            0.99);
}

TEST(MediumTest, MultipleJammersAccumulate) {
  Medium medium = make_medium(10.0);
  JammerConfig jam;
  jam.position = {10.0, 30.0, 0};  // 30 m away: individually tolerable
  jam.tx_power_dbm = 0.0;
  jam.pattern = JammerPattern::kConstant;
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.channel = 3;
  tx.frame_bytes = 110;
  medium.add_jammer(jam);
  const double one = medium.reception_probability(tx, NodeId{1}, 0,
                                                  SimTime{0}, {});
  for (int i = 0; i < 7; ++i) medium.add_jammer(jam);
  const double eight = medium.reception_probability(tx, NodeId{1}, 0,
                                                    SimTime{0}, {});
  EXPECT_LT(eight, one);  // 8x the interference power
}

TEST(MediumTest, TryReceiveDeterministicWithSameRng) {
  Medium medium = make_medium(28.0);
  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.channel = 3;
  tx.frame_bytes = 110;
  Rng rng_a(5);
  Rng rng_b(5);
  for (std::uint64_t slot = 0; slot < 50; ++slot) {
    EXPECT_EQ(
        medium.try_receive(tx, NodeId{1}, slot, SimTime{0}, {}, rng_a),
        medium.try_receive(tx, NodeId{1}, slot, SimTime{0}, {}, rng_b));
  }
}

}  // namespace
}  // namespace digs
