// DIGS_PROF profiler contract (ISSUE 7 acceptance):
//
//  * Zero-cost when off: the profiler only ever measures wall time, so the
//    simulation must produce BIT-IDENTICAL results with the profiler enabled
//    and disabled. No tolerances — a single draw consumed differently would
//    shift every downstream number.
//
//  * Coverage when on: the per-phase totals (wake pop, plan/gather, bucket
//    build, begin_listener, decode, merge, ACK, deliver, energy, refresh)
//    are chained lap() boundaries over the slot body, so their sum must land
//    within 5% of the measured end-to-end slot-loop wall time (kSlotTotal).
//    That is what makes the DIGS_PROF=1 breakdown trustworthy: nothing
//    material happens between phases that isn't charged to a phase.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/prof.h"
#include "testbed/experiment.h"
#include "testbed/layouts.h"

namespace digs {
namespace {

ExperimentConfig prof_config(bool use_engine) {
  ExperimentConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 21;
  config.num_flows = 4;
  config.warmup = seconds(std::int64_t{60});
  config.duration = seconds(std::int64_t{60});
  config.stat_drain = seconds(std::int64_t{10});
  config.num_jammers = 0;
  config.use_slot_engine = use_engine;
  return config;
}

ExperimentResult run_once(bool use_engine) {
  ExperimentRunner runner(half_testbed_a(), prof_config(use_engine));
  return runner.run();
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.overall_pdr, b.overall_pdr);
  EXPECT_EQ(a.flow_pdrs, b.flow_pdrs);
  EXPECT_EQ(a.latencies_ms, b.latencies_ms);
  EXPECT_EQ(a.join_times_s, b.join_times_s);
  EXPECT_EQ(a.duty_cycle, b.duty_cycle);
  EXPECT_EQ(a.guard_misses, b.guard_misses);
  EXPECT_EQ(a.desync_events, b.desync_events);
}

TEST(ProfTest, EnabledRunIsBitIdenticalToDisabled) {
  prof::force_enabled(false);
  const ExperimentResult off = run_once(/*use_engine=*/true);

  prof::force_enabled(true);
  prof::reset();
  const ExperimentResult on = run_once(/*use_engine=*/true);
  prof::force_enabled(false);

  expect_identical(off, on);
  // The enabled run must actually have recorded slots, or the identity
  // check above would be comparing two disabled runs.
  EXPECT_GT(prof::calls(prof::kSlotTotal), 0u);
}

TEST(ProfTest, DisabledRecordsNothing) {
  prof::force_enabled(false);
  prof::reset();
  (void)run_once(/*use_engine=*/true);
  for (int p = 0; p < prof::kNumPhases; ++p) {
    EXPECT_EQ(prof::total_ns(static_cast<prof::Phase>(p)), 0u)
        << prof::phase_name(static_cast<prof::Phase>(p));
    EXPECT_EQ(prof::calls(static_cast<prof::Phase>(p)), 0u);
  }
}

TEST(ProfTest, PhaseTotalsCoverSlotLoopWallTime) {
  // Both slot drivers: the event-driven engine (wake pop / refresh phases)
  // and the polled per-slot driver (plan through energy only).
  for (const bool use_engine : {true, false}) {
    prof::force_enabled(true);
    prof::reset();
    (void)run_once(use_engine);
    prof::force_enabled(false);

    const double total = static_cast<double>(prof::total_ns(prof::kSlotTotal));
    const double sum = static_cast<double>(prof::summed_phase_ns());
    ASSERT_GT(prof::calls(prof::kSlotTotal), 0u) << "engine=" << use_engine;
    ASSERT_GT(total, 0.0) << "engine=" << use_engine;
    // Acceptance: phase totals within 5% of slot-loop wall time. The sum can
    // only undershoot (phases are chained sub-intervals of the slot body).
    EXPECT_GE(sum, 0.95 * total) << "engine=" << use_engine << "\n"
                                 << prof::json();
    EXPECT_LE(sum, 1.05 * total) << "engine=" << use_engine << "\n"
                                 << prof::json();
  }
}

TEST(ProfTest, JsonShapeAndNames) {
  prof::force_enabled(true);
  prof::reset();
  prof::add(prof::kDecode, 1234);
  const std::string j = prof::json();
  prof::force_enabled(false);
  EXPECT_NE(j.find("\"phases\""), std::string::npos);
  EXPECT_NE(j.find("\"decode\""), std::string::npos);
  EXPECT_NE(j.find("\"summed_phase_ns\""), std::string::npos);
  EXPECT_NE(j.find("1234"), std::string::npos);
  for (int p = 0; p < prof::kNumPhases; ++p) {
    EXPECT_NE(j.find(prof::phase_name(static_cast<prof::Phase>(p))),
              std::string::npos);
  }
}

}  // namespace
}  // namespace digs
