// Property-based tests (parameterized gtest sweeps) over the system's core
// invariants:
//   - the DiGS autonomous schedule (Eq. 4) is collision-free and
//     sender/receiver-consistent for any network size / attempt count,
//   - centrally computed graph routes always form a DAG with monotonically
//     decreasing cost towards the APs,
//   - the central TDMA schedule is conflict-free for arbitrary flow sets,
//   - Trickle intervals stay within [Imin, Imax] under arbitrary event
//     sequences,
//   - the PRR model is monotone in SINR and frame length,
//   - schedule combination always yields the highest-priority active class.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "manager/central_scheduler.h"
#include "manager/graph_router.h"
#include "phy/prr.h"
#include "routing/trickle.h"
#include "sched/digs_scheduler.h"
#include "sched/orchestra_scheduler.h"
#include "sim/simulator.h"

namespace digs {
namespace {

// ---------------------------------------------------------------------
// DiGS schedule invariants across (num_nodes, num_aps, attempts, length).
// ---------------------------------------------------------------------

struct ScheduleParams {
  int num_nodes;
  int num_aps;
  int attempts;
  std::uint16_t app_len;
};

class DigsScheduleProperty : public ::testing::TestWithParam<ScheduleParams> {
};

TEST_P(DigsScheduleProperty, TxSlotsDistinctWhileCapacityAllows) {
  const ScheduleParams p = GetParam();
  SchedulerConfig config;
  config.attempts = p.attempts;
  config.app_slotframe_len = p.app_len;
  DigsScheduler scheduler(config);

  const int devices = p.num_nodes - p.num_aps;
  std::set<std::uint16_t> slots;
  int assigned = 0;
  for (int id = p.num_aps; id < p.num_nodes; ++id) {
    for (int attempt = 1; attempt <= p.attempts; ++attempt) {
      slots.insert(scheduler.app_tx_slot(
          NodeId{static_cast<std::uint16_t>(id)},
          static_cast<std::uint16_t>(p.num_aps), attempt));
      ++assigned;
    }
  }
  if (devices * p.attempts <= p.app_len) {
    // Within capacity Eq. 4 is a perfect assignment: no slot is reused.
    EXPECT_EQ(slots.size(), static_cast<std::size_t>(assigned));
  } else {
    // Beyond capacity the assignment wraps; it must still cover the
    // whole slotframe evenly rather than clustering.
    EXPECT_EQ(slots.size(), static_cast<std::size_t>(p.app_len));
  }
}

TEST_P(DigsScheduleProperty, MirrorCellsMatchForEveryChild) {
  const ScheduleParams p = GetParam();
  SchedulerConfig config;
  config.attempts = p.attempts;
  config.app_slotframe_len = p.app_len;
  DigsScheduler scheduler(config);

  // Parent = first field device; all remaining devices are its children,
  // alternating best/second-best roles.
  const NodeId parent{static_cast<std::uint16_t>(p.num_aps)};
  std::vector<ChildEntry> children;
  for (int id = p.num_aps + 1; id < p.num_nodes; ++id) {
    children.push_back(ChildEntry{NodeId{static_cast<std::uint16_t>(id)},
                                  id % 2 == 0, {}});
  }
  RoutingView parent_view;
  parent_view.id = parent;
  parent_view.num_access_points = static_cast<std::uint16_t>(p.num_aps);
  parent_view.best_parent = NodeId{0};
  parent_view.children = children;
  Schedule parent_schedule;
  scheduler.rebuild(parent_schedule, parent_view);
  const Slotframe* parent_app =
      parent_schedule.slotframe(TrafficClass::kApplication);

  for (const ChildEntry& child : children) {
    RoutingView child_view;
    child_view.id = child.id;
    child_view.num_access_points = static_cast<std::uint16_t>(p.num_aps);
    child_view.best_parent = child.as_best ? parent : NodeId{0};
    child_view.second_best_parent = child.as_best ? NodeId{0} : parent;
    Schedule child_schedule;
    scheduler.rebuild(child_schedule, child_view);

    // Every TX cell of the child aimed at this parent must have a matching
    // RX cell (same slot, same channel offset) in the parent's schedule.
    for (const Cell& tx :
         child_schedule.slotframe(TrafficClass::kApplication)->cells) {
      if (tx.option != CellOption::kTx || tx.peer != parent) continue;
      bool matched = false;
      for (const Cell& rx : parent_app->cells) {
        if (rx.option == CellOption::kRx && rx.peer == child.id &&
            rx.slot_offset == tx.slot_offset &&
            rx.channel_offset == tx.channel_offset) {
          matched = true;
        }
      }
      EXPECT_TRUE(matched)
          << "child " << child.id.value << " attempt "
          << static_cast<int>(tx.attempt) << " has no mirror RX cell";
    }
  }
}

TEST_P(DigsScheduleProperty, LastAttemptTargetsBackupParent) {
  const ScheduleParams p = GetParam();
  SchedulerConfig config;
  config.attempts = p.attempts;
  config.app_slotframe_len = p.app_len;
  DigsScheduler scheduler(config);

  RoutingView view;
  view.id = NodeId{static_cast<std::uint16_t>(p.num_aps + 1)};
  view.num_access_points = static_cast<std::uint16_t>(p.num_aps);
  view.best_parent = NodeId{0};
  view.second_best_parent = NodeId{1};
  Schedule schedule;
  scheduler.rebuild(schedule, view);
  for (const Cell& cell :
       schedule.slotframe(TrafficClass::kApplication)->cells) {
    if (cell.option != CellOption::kTx) continue;
    if (cell.attempt == p.attempts) {
      EXPECT_EQ(cell.peer, NodeId{1});
    } else {
      EXPECT_EQ(cell.peer, NodeId{0});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DigsScheduleProperty,
    ::testing::Values(ScheduleParams{6, 2, 3, 7},      // paper Fig. 7 scale
                      ScheduleParams{20, 2, 3, 151},   // Half Testbed A
                      ScheduleParams{50, 2, 3, 151},   // Testbed A (exact fit)
                      ScheduleParams{44, 2, 3, 151},   // Testbed B
                      ScheduleParams{152, 2, 3, 151},  // Cooja-150 (wraps)
                      ScheduleParams{30, 4, 3, 151},   // more APs
                      ScheduleParams{20, 2, 2, 151},   // A = 2
                      ScheduleParams{20, 2, 4, 151},   // A = 4
                      ScheduleParams{20, 2, 3, 101}));

// ---------------------------------------------------------------------
// Centralized graph routing invariants over random topologies.
// ---------------------------------------------------------------------

class GraphRouterProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] TopologySnapshot random_topology(std::uint64_t seed) const {
    Rng rng(seed);
    TopologySnapshot topo;
    topo.num_nodes = static_cast<std::uint16_t>(rng.uniform_int(10, 60));
    topo.num_access_points = static_cast<std::uint16_t>(rng.uniform_int(1, 3));
    topo.etx.assign(topo.num_nodes,
                    std::vector<double>(topo.num_nodes,
                                        TopologySnapshot::kNoLink));
    const double density = rng.uniform(0.1, 0.5);
    for (std::uint16_t a = 0; a < topo.num_nodes; ++a) {
      for (std::uint16_t b = a + 1; b < topo.num_nodes; ++b) {
        if (!rng.chance(density)) continue;
        const double cost = rng.uniform(1.0, 3.0);
        topo.etx[a][b] = cost;
        topo.etx[b][a] = cost;
      }
    }
    return topo;
  }
};

TEST_P(GraphRouterProperty, RoutesAreAlwaysDag) {
  const auto topo = random_topology(GetParam());
  const auto result = compute_graph_routes(topo);
  EXPECT_TRUE(routes_are_dag(topo, result));
}

TEST_P(GraphRouterProperty, CostsDecreaseAlongParents) {
  const auto topo = random_topology(GetParam());
  const auto result = compute_graph_routes(topo);
  for (std::uint16_t v = topo.num_access_points; v < topo.num_nodes; ++v) {
    const GraphRoute& route = result.routes[v];
    if (!route.best_parent.valid()) continue;
    EXPECT_LT(result.routes[route.best_parent.value].cost, route.cost);
    if (route.second_best_parent.valid()) {
      EXPECT_LT(result.routes[route.second_best_parent.value].cost,
                route.cost);
      EXPECT_NE(route.second_best_parent, route.best_parent);
    }
  }
}

TEST_P(GraphRouterProperty, UnreachablesHaveNoParents) {
  const auto topo = random_topology(GetParam());
  const auto result = compute_graph_routes(topo);
  for (const NodeId unreachable : result.unreachable) {
    EXPECT_FALSE(result.routes[unreachable.value].best_parent.valid());
    EXPECT_FALSE(
        result.routes[unreachable.value].second_best_parent.valid());
  }
}

TEST_P(GraphRouterProperty, CentralScheduleConflictFree) {
  const auto topo = random_topology(GetParam());
  const auto routes = compute_graph_routes(topo);
  Rng rng(GetParam() ^ 0xF10);
  std::vector<CentralFlow> flows;
  for (int f = 0; f < 6; ++f) {
    const auto source = static_cast<std::uint16_t>(
        rng.uniform_int(topo.num_access_points, topo.num_nodes - 1));
    flows.push_back(
        {FlowId{static_cast<std::uint16_t>(f)}, NodeId{source}});
  }
  const auto schedule = compute_central_schedule(topo, routes, flows);
  EXPECT_TRUE(schedule.conflict_free());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphRouterProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

// ---------------------------------------------------------------------
// Trickle interval bounds under arbitrary event sequences.
// ---------------------------------------------------------------------

struct TrickleParams {
  std::int64_t imin_ms;
  int doublings;
  int redundancy_k;
};

class TrickleProperty : public ::testing::TestWithParam<TrickleParams> {};

TEST_P(TrickleProperty, IntervalAlwaysWithinBounds) {
  const TrickleParams p = GetParam();
  Simulator sim;
  TrickleConfig config;
  config.imin = milliseconds(p.imin_ms);
  config.doublings = p.doublings;
  config.redundancy_k = p.redundancy_k;
  Trickle trickle(sim, config, Rng(p.imin_ms * 31 + p.doublings), [] {});
  trickle.start();

  Rng rng(p.imin_ms);
  for (int step = 0; step < 200; ++step) {
    sim.run_until(sim.now() +
                  SimDuration{rng.uniform_int(1'000, 2'000'000)});
    switch (rng.uniform_int(3)) {
      case 0: trickle.hear_consistent(); break;
      case 1: trickle.hear_inconsistent(); break;
      default: break;
    }
    EXPECT_GE(trickle.current_interval().us, config.imin.us);
    EXPECT_LE(trickle.current_interval().us, trickle.imax().us);
  }
}

TEST_P(TrickleProperty, SteadyStateRateBounded) {
  const TrickleParams p = GetParam();
  Simulator sim;
  TrickleConfig config;
  config.imin = milliseconds(p.imin_ms);
  config.doublings = p.doublings;
  config.redundancy_k = 0;
  int fires = 0;
  Trickle trickle(sim, config, Rng(3), [&] { ++fires; });
  trickle.start();
  const SimDuration horizon{trickle.imax().us * 20};
  sim.run_until(SimTime{0} + horizon);
  // At most one transmission per interval; intervals at least Imin.
  EXPECT_LE(fires, static_cast<int>(horizon.us / config.imin.us) + 1);
  // And at least one per two Imax periods once settled.
  EXPECT_GE(fires, 8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrickleProperty,
    ::testing::Values(TrickleParams{100, 3, 0}, TrickleParams{100, 6, 3},
                      TrickleParams{1000, 6, 3}, TrickleParams{500, 1, 1},
                      TrickleParams{4000, 8, 3}));

// ---------------------------------------------------------------------
// PRR model monotonicity across frame lengths.
// ---------------------------------------------------------------------

class PrrProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrrProperty, MonotoneInSinr) {
  PrrTable table(GetParam());
  double last = -1.0;
  for (double db = -10.0; db <= 20.0; db += 0.25) {
    const double prr = table.prr(db);
    EXPECT_GE(prr, last - 1e-12);
    EXPECT_GE(prr, 0.0);
    EXPECT_LE(prr, 1.0);
    last = prr;
  }
}

TEST_P(PrrProperty, ShorterFramesNeverWorse) {
  const int bytes = GetParam();
  if (bytes <= 26) return;
  PrrTable longer(bytes);
  PrrTable ack(26);
  for (double db = -5.0; db <= 10.0; db += 0.5) {
    EXPECT_GE(ack.prr(db), longer.prr(db) - 1e-12) << db;
  }
}

INSTANTIATE_TEST_SUITE_P(FrameLengths, PrrProperty,
                         ::testing::Values(26, 40, 50, 80, 110, 127));

// ---------------------------------------------------------------------
// Schedule combination priority invariant under random slotframes.
// ---------------------------------------------------------------------

class CombinationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CombinationProperty, WinnerIsAlwaysHighestActivePriority) {
  Rng rng(GetParam());
  Schedule schedule;
  std::array<std::uint16_t, 3> lengths{};
  for (int t = 0; t < 3; ++t) {
    Slotframe frame;
    frame.traffic = static_cast<TrafficClass>(t);
    frame.length = static_cast<std::uint16_t>(rng.uniform_int(5, 60));
    lengths[t] = frame.length;
    const int cells = static_cast<int>(rng.uniform_int(1, 5));
    for (int c = 0; c < cells; ++c) {
      Cell cell;
      cell.slot_offset =
          static_cast<std::uint16_t>(rng.uniform_int(frame.length));
      cell.traffic = frame.traffic;
      cell.option = CellOption::kTx;
      frame.cells.push_back(cell);
    }
    schedule.install(std::move(frame));
  }

  for (std::uint64_t asn = 0; asn < 2000; ++asn) {
    const auto active = schedule.active_cells(asn);
    if (active.empty()) {
      for (int t = 0; t < 3; ++t) {
        EXPECT_TRUE(
            schedule.class_cells(static_cast<TrafficClass>(t), asn).empty());
      }
      continue;
    }
    const auto winner = active.front().traffic;
    // No higher-priority class may be active.
    for (int t = 0; t < static_cast<int>(winner); ++t) {
      EXPECT_TRUE(
          schedule.class_cells(static_cast<TrafficClass>(t), asn).empty())
          << "asn " << asn;
    }
    // All returned cells share the winning class.
    for (const Cell& cell : active) {
      EXPECT_EQ(cell.traffic, winner);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinationProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------
// Orchestra scheduler: sender/receiver agreement across node id sweeps.
// ---------------------------------------------------------------------

class OrchestraProperty : public ::testing::TestWithParam<int> {};

TEST_P(OrchestraProperty, SenderBasedAgreementForAnyPair) {
  SchedulerConfig config;
  OrchestraScheduler scheduler(config);
  const auto child_id = static_cast<std::uint16_t>(GetParam());
  const auto parent_id = static_cast<std::uint16_t>(GetParam() / 2);
  if (child_id == parent_id) return;

  Schedule child;
  RoutingView child_view;
  child_view.id = NodeId{child_id};
  child_view.num_access_points = 2;
  child_view.best_parent = NodeId{parent_id};
  scheduler.rebuild(child, child_view);

  Schedule parent;
  std::vector<ChildEntry> children{ChildEntry{NodeId{child_id}, true, {}}};
  RoutingView parent_view;
  parent_view.id = NodeId{parent_id};
  parent_view.num_access_points = 2;
  parent_view.best_parent = NodeId{0};
  parent_view.children = children;
  scheduler.rebuild(parent, parent_view);

  const Cell* tx = nullptr;
  for (const Cell& cell :
       child.slotframe(TrafficClass::kApplication)->cells) {
    if (cell.option == CellOption::kTx) tx = &cell;
  }
  ASSERT_NE(tx, nullptr);
  bool matched = false;
  for (const Cell& rx :
       parent.slotframe(TrafficClass::kApplication)->cells) {
    if (rx.option == CellOption::kRx && rx.slot_offset == tx->slot_offset &&
        rx.channel_offset == tx->channel_offset) {
      matched = true;
    }
  }
  EXPECT_TRUE(matched);
}

INSTANTIATE_TEST_SUITE_P(Ids, OrchestraProperty,
                         ::testing::Values(3, 9, 17, 33, 65, 129, 255));

}  // namespace
}  // namespace digs
