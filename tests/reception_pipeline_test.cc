// Property tests for the O(L*T) busy-slot reception pipeline:
//  - SlotReception::decode() returns the SAME doubles (bit-identical, no
//    tolerance) as the O(L*T^2) reference Medium::check_reception(), over
//    randomized busy slots, listeners, channels and TX powers;
//  - the reachability index never prunes a pair that has a nonzero
//    reception probability on any (channel, slot) — the ±6σ truncated
//    fading makes the margin a hard guarantee, not a heuristic.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "phy/medium.h"
#include "phy/propagation.h"
#include "phy/reception.h"

namespace digs {
namespace {

/// A scattered 60 m x 25 m floor (Testbed-A-like densities) plus two far
/// outliers so the reachability index has genuinely unreachable pairs.
std::vector<Position> scattered_positions(std::size_t devices,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Position> positions;
  for (std::size_t i = 0; i < devices; ++i) {
    positions.push_back(
        Position{rng.uniform(0.0, 60.0), rng.uniform(0.0, 25.0), 0.0});
  }
  positions.push_back(Position{900.0, 0.0, 0.0});
  positions.push_back(Position{0.0, 900.0, 0.0});
  return positions;
}

std::unique_ptr<Medium> make_medium(std::uint64_t seed, bool with_jammer) {
  MediumConfig config;
  config.propagation.path_loss_exponent = 3.8;
  auto medium = std::make_unique<Medium>(
      config, scattered_positions(14, hash_mix(seed, 0x10CA)), seed);
  if (with_jammer) {
    JammerConfig jammer;
    jammer.position = Position{30.0, 12.0, 0.0};
    jammer.tx_power_dbm = -4.0;
    medium->add_jammer(jammer);
  }
  return medium;
}

/// Builds a random busy slot: `count` co- and cross-channel transmitters
/// with standard frame sizes, most at the primed power, some hotter.
/// Senders are distinct, as in any physical slot (a radio transmits at most
/// once per slot) — with duplicate senders at different powers the two
/// paths would legitimately disagree on which copy to subtract.
std::vector<TransmissionAttempt> random_attempts(const Medium& medium,
                                                 std::size_t count,
                                                 Rng& rng) {
  std::vector<std::uint16_t> senders(medium.num_nodes());
  for (std::uint16_t i = 0; i < senders.size(); ++i) senders[i] = i;
  std::vector<TransmissionAttempt> attempts;
  for (std::size_t t = 0; t < count && !senders.empty(); ++t) {
    const std::size_t pick = rng.next() % senders.size();
    TransmissionAttempt attempt;
    attempt.sender = NodeId{senders[pick]};
    senders.erase(senders.begin() + static_cast<std::ptrdiff_t>(pick));
    attempt.channel = static_cast<PhysicalChannel>(rng.next() % 3);
    attempt.frame_bytes =
        kPrebuiltPrrFrameBytes[rng.next() % kPrebuiltPrrFrameBytes.size()];
    // 1 in 4 attempts transmits off the primed power, forcing decode()
    // through the generic rss_dbm() path; equality must hold there too.
    attempt.tx_power_dbm = (rng.next() % 4 == 0) ? 4.0 : 0.0;
    attempts.push_back(attempt);
  }
  return attempts;
}

TEST(ReceptionPipelineTest, CachedPathMatchesReferenceExactly) {
  for (const bool with_jammer : {false, true}) {
    const auto medium_ptr = make_medium(0xBEEF + with_jammer, with_jammer);
    Medium& medium = *medium_ptr;
    medium.build_reachability(0.0);
    SlotReception reception(medium);
    Rng rng(0x5107);

    std::size_t pairs_checked = 0;
    for (std::uint64_t slot = 1; slot <= 40; ++slot) {
      const SimTime slot_start =
          SimTime{0} + static_cast<std::int64_t>(slot) * kSlotDuration;
      const auto attempts =
          random_attempts(medium, 2 + rng.next() % 6, rng);
      reception.begin_slot(slot, slot_start, attempts);

      for (std::uint16_t r = 0; r < medium.num_nodes(); ++r) {
        const NodeId rx{r};
        for (std::size_t t = 0; t < attempts.size(); ++t) {
          if (attempts[t].sender == rx) continue;
          reception.begin_listener(rx, attempts[t].channel);
          const Medium::ReceptionCheck cached = reception.decode(t);
          const Medium::ReceptionCheck reference = medium.check_reception(
              attempts[t], rx, slot, slot_start, attempts);
          // Exact: the pipeline must be a reordering-free refactoring of
          // the reference arithmetic, not an approximation of it.
          ASSERT_EQ(cached.probability, reference.probability)
              << "slot " << slot << " rx " << r << " attempt " << t;
          ASSERT_EQ(cached.rss_dbm, reference.rss_dbm)
              << "slot " << slot << " rx " << r << " attempt " << t;
          ++pairs_checked;
        }
      }
    }
    EXPECT_GT(pairs_checked, 1000u);
  }
}

// Clock drift adds a guard-time miss check to both reception paths; they
// must still return the same doubles AND the same guard_missed verdicts,
// over randomized per-node clock offsets spanning hits and misses.
TEST(ReceptionPipelineTest, GuardMissParityWithReference) {
  const auto medium_ptr = make_medium(0xD81F7, /*with_jammer=*/false);
  Medium& medium = *medium_ptr;
  medium.build_reachability(0.0);
  SlotReception reception(medium);
  Rng rng(0x6A4D);
  const double guard_us = 2200.0;

  std::size_t misses = 0;
  std::size_t hits = 0;
  for (std::uint64_t slot = 1; slot <= 40; ++slot) {
    const SimTime slot_start =
        SimTime{0} + static_cast<std::int64_t>(slot) * kSlotDuration;
    auto attempts = random_attempts(medium, 2 + rng.next() % 6, rng);
    // Offsets up to ~2x the guard, so both verdicts occur in bulk.
    for (TransmissionAttempt& attempt : attempts) {
      attempt.clock_offset_us = rng.uniform(-2500.0, 2500.0);
    }
    reception.begin_slot(slot, slot_start, attempts);

    for (std::uint16_t r = 0; r < medium.num_nodes(); ++r) {
      const NodeId rx{r};
      const double rx_offset_us = rng.uniform(-2500.0, 2500.0);
      for (std::size_t t = 0; t < attempts.size(); ++t) {
        if (attempts[t].sender == rx) continue;
        reception.begin_listener(rx, attempts[t].channel, rx_offset_us,
                                 guard_us);
        const Medium::ReceptionCheck cached = reception.decode(t);
        const Medium::ReceptionCheck reference = medium.check_reception(
            attempts[t], rx, slot, slot_start, attempts, rx_offset_us,
            guard_us);
        ASSERT_EQ(cached.probability, reference.probability)
            << "slot " << slot << " rx " << r << " attempt " << t;
        ASSERT_EQ(cached.rss_dbm, reference.rss_dbm)
            << "slot " << slot << " rx " << r << " attempt " << t;
        ASSERT_EQ(cached.guard_missed, reference.guard_missed)
            << "slot " << slot << " rx " << r << " attempt " << t;
        if (cached.guard_missed) {
          ASSERT_EQ(cached.probability, 0.0);
          ++misses;
        } else {
          ++hits;
        }
      }
    }
  }
  // Both verdicts must actually be exercised.
  EXPECT_GT(misses, 100u);
  EXPECT_GT(hits, 100u);
}

TEST(ReceptionPipelineTest, PruningNeverSkipsReceivablePair) {
  const auto medium_ptr = make_medium(0xCAFE, /*with_jammer=*/false);
  Medium& medium = *medium_ptr;
  medium.build_reachability(0.0);

  // The index must be doing real work on this layout: the outliers are
  // unreachable from the main floor, the floor is internally connected.
  std::size_t pruned = 0;
  std::size_t kept = 0;
  for (std::uint16_t a = 0; a < medium.num_nodes(); ++a) {
    for (std::uint16_t b = 0; b < medium.num_nodes(); ++b) {
      if (a == b) continue;
      (medium.maybe_reachable(NodeId{a}, NodeId{b}) ? kept : pruned) += 1;
    }
  }
  ASSERT_GT(pruned, 0u);
  ASSERT_GT(kept, 0u);

  // Every pruned pair must have exactly zero reception probability on
  // every channel and slot we throw at it — even alone on the air (no
  // interference), which is the most favorable case for the receiver.
  for (std::uint16_t a = 0; a < medium.num_nodes(); ++a) {
    for (std::uint16_t b = 0; b < medium.num_nodes(); ++b) {
      if (a == b || medium.maybe_reachable(NodeId{a}, NodeId{b})) continue;
      TransmissionAttempt attempt;
      attempt.sender = NodeId{a};
      for (PhysicalChannel channel = 0; channel < 16; ++channel) {
        attempt.channel = channel;
        for (std::uint64_t slot = 1; slot <= 32; ++slot) {
          const SimTime slot_start =
              SimTime{0} + static_cast<std::int64_t>(slot) * kSlotDuration;
          const std::span<const TransmissionAttempt> alone(&attempt, 1);
          ASSERT_EQ(medium
                        .check_reception(attempt, NodeId{b}, slot,
                                         slot_start, alone)
                        .probability,
                    0.0)
              << "pruned pair " << a << "->" << b << " decodable on channel "
              << static_cast<int>(channel) << " slot " << slot;
        }
      }
    }
  }
}

// Multi-cell parity: on a deployment spanning >=4x4 active grid cells the
// resolver gathers each listener's attempts from its 3x3 cell-neighborhood
// buckets instead of scanning the slot — and must still return the exact
// reference doubles, with drifted clocks (guard hits AND misses), active
// link blackouts (the fault-script primitive), and both flat and compact
// (CSR merge-join) storage. Even slots sort the attempts by sender — the
// in-engine ascending order driving the merge-join fast path — while odd
// slots keep the random order that forces the binary-search re-seat.
TEST(ReceptionPipelineTest, MultiCellBucketParityUnderDriftAndBlackout) {
  for (const bool compact : {false, true}) {
    MediumConfig config;
    config.propagation.path_loss_exponent = 3.8;
    // 50 m cells over the 210 m floor below: >=5 cells per axis, so the
    // 3x3 cutoff genuinely prunes pairs (unlike the paper-scale layouts).
    config.grid_cell_size_m = 50.0;
    if (compact) config.flat_table_max_nodes = 0;
    Rng pos_rng(0x9A1D);
    std::vector<Position> positions;
    for (std::size_t i = 0; i < 42; ++i) {
      positions.push_back(Position{pos_rng.uniform(0.0, 210.0),
                                   pos_rng.uniform(0.0, 210.0), 0.0});
    }
    Medium medium(config, positions, 0xF00D);
    medium.build_reachability(0.0);
    ASSERT_TRUE(medium.grid().active());
    ASSERT_GE(medium.grid().cols(), 4u);
    ASSERT_GE(medium.grid().rows(), 4u);
    medium.set_link_blackout(NodeId{3}, NodeId{7}, true);
    medium.set_link_blackout(NodeId{11}, NodeId{2}, true);

    SlotReception reception(medium);
    Rng rng(0x77AB);
    const double guard_us = 2200.0;
    std::size_t uncoupled = 0;
    std::size_t misses = 0;
    std::size_t hits = 0;
    std::size_t decodable = 0;
    std::size_t blacked = 0;
    for (std::uint64_t slot = 1; slot <= 60; ++slot) {
      const SimTime slot_start =
          SimTime{0} + static_cast<std::int64_t>(slot) * kSlotDuration;
      auto attempts = random_attempts(medium, 4 + rng.next() % 8, rng);
      if (slot % 2 == 0) {
        std::sort(attempts.begin(), attempts.end(),
                  [](const TransmissionAttempt& a,
                     const TransmissionAttempt& b) {
                    return a.sender.value < b.sender.value;
                  });
      }
      for (TransmissionAttempt& attempt : attempts) {
        attempt.clock_offset_us = rng.uniform(-2500.0, 2500.0);
      }
      reception.begin_slot(slot, slot_start, attempts);

      for (std::uint16_t r = 0; r < medium.num_nodes(); ++r) {
        const NodeId rx{r};
        const double rx_offset_us = rng.uniform(-2500.0, 2500.0);
        for (std::size_t t = 0; t < attempts.size(); ++t) {
          if (attempts[t].sender == rx) continue;
          reception.begin_listener(rx, attempts[t].channel, rx_offset_us,
                                   guard_us);
          const Medium::ReceptionCheck cached = reception.decode(t);
          const Medium::ReceptionCheck reference = medium.check_reception(
              attempts[t], rx, slot, slot_start, attempts, rx_offset_us,
              guard_us);
          ASSERT_EQ(cached.probability, reference.probability)
              << "slot " << slot << " rx " << r << " attempt " << t;
          ASSERT_EQ(cached.rss_dbm, reference.rss_dbm)
              << "slot " << slot << " rx " << r << " attempt " << t;
          ASSERT_EQ(cached.guard_missed, reference.guard_missed)
              << "slot " << slot << " rx " << r << " attempt " << t;
          if (!medium.coupled(attempts[t].sender, rx)) {
            ++uncoupled;
          } else if (cached.guard_missed) {
            ++misses;
          } else {
            ++hits;
          }
          if (cached.probability > 0.0) ++decodable;
          if (medium.link_blacked_out(attempts[t].sender, rx)) ++blacked;
        }
      }
    }
    // Every regime must actually be exercised on this layout.
    EXPECT_GT(uncoupled, 500u) << "compact=" << compact;
    EXPECT_GT(misses, 100u) << "compact=" << compact;
    EXPECT_GT(hits, 100u) << "compact=" << compact;
    EXPECT_GT(decodable, 50u) << "compact=" << compact;
    EXPECT_GT(blacked, 10u) << "compact=" << compact;
  }
}

TEST(ReceptionPipelineTest, FadingNeverExceedsProvableMargin) {
  // The pruning margin is sensitivity - max_fading_db(); it is only sound
  // if no fading draw ever adds more than max_fading_db() to the mean RSS.
  PropagationConfig config;
  Propagation prop(config, 0x7E57);
  const double bound = prop.max_fading_db();
  EXPECT_EQ(bound, kFadingNormalBound * config.temporal_fading_sigma_db);
  double worst = 0.0;
  for (std::uint64_t slot = 0; slot < 5000; ++slot) {
    for (PhysicalChannel channel = 0; channel < 16; ++channel) {
      const double fade =
          prop.fading_db(NodeId{1}, NodeId{2}, channel, slot);
      ASSERT_LE(fade, bound);
      ASSERT_GE(fade, -bound);
      if (fade > worst) worst = fade;
    }
  }
  // The bound is tight enough to be exercised: deep fades approach it.
  EXPECT_GT(worst, 0.5 * bound);
}

}  // namespace
}  // namespace digs
