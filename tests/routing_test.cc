// Unit tests for Trickle (RFC 6206), the ETXw weighting (paper Eq. 1-3),
// DiGS graph routing (Algorithm 1), and the RPL baseline — driven directly
// through the protocol interfaces without the MAC/medium.
#include <gtest/gtest.h>

#include <vector>

#include "routing/digs_routing.h"
#include "routing/routing.h"
#include "routing/rpl_routing.h"
#include "routing/trickle.h"
#include "sim/simulator.h"

namespace digs {
namespace {

// --- ETXw weights (Eq. 1-3) ---

TEST(EtxwTest, PerfectLinkAllWeightOnPrimary) {
  const EtxwWeights w = etxw_weights(1.0);
  EXPECT_DOUBLE_EQ(w.w1, 1.0);
  EXPECT_DOUBLE_EQ(w.w2, 0.0);
}

TEST(EtxwTest, WeightsSumToOne) {
  for (double etx = 1.0; etx <= 5.0; etx += 0.25) {
    const EtxwWeights w = etxw_weights(etx);
    EXPECT_NEAR(w.w1 + w.w2, 1.0, 1e-12);
    EXPECT_GE(w.w1, 0.0);
    EXPECT_GE(w.w2, 0.0);
  }
}

TEST(EtxwTest, WorseLinkShiftsWeightToBackup) {
  const EtxwWeights good = etxw_weights(1.1);
  const EtxwWeights bad = etxw_weights(3.0);
  EXPECT_GT(bad.w2, good.w2);
  // ETX 2 -> miss probability per attempt 1/2 -> w2 = 1/4.
  const EtxwWeights two = etxw_weights(2.0);
  EXPECT_NEAR(two.w2, 0.25, 1e-12);
  EXPECT_NEAR(two.w1, 0.75, 1e-12);
}

TEST(EtxwTest, WeightedEtxInterpolates) {
  // Perfect primary link: ETXw == accumulated cost through best parent.
  EXPECT_DOUBLE_EQ(weighted_etx(1.0, 2.0, 10.0), 2.0);
  // ETX 2: 0.75 * 2 + 0.25 * 6 = 3.
  EXPECT_DOUBLE_EQ(weighted_etx(2.0, 2.0, 6.0), 3.0);
}

TEST(EtxwTest, SubUnityEtxClamped) {
  const EtxwWeights w = etxw_weights(0.5);
  EXPECT_DOUBLE_EQ(w.w1, 1.0);
}

// --- Trickle ---

TEST(TrickleTest, FiresWithinFirstInterval) {
  Simulator sim;
  int fires = 0;
  TrickleConfig config;
  config.imin = milliseconds(100);
  config.doublings = 4;
  Trickle trickle(sim, config, Rng(1), [&] { ++fires; });
  trickle.start();
  sim.run_until(SimTime{0} + milliseconds(100));
  EXPECT_EQ(fires, 1);
}

TEST(TrickleTest, IntervalDoublesUpToImax) {
  Simulator sim;
  TrickleConfig config;
  config.imin = milliseconds(100);
  config.doublings = 3;  // Imax = 800ms
  Trickle trickle(sim, config, Rng(1), [] {});
  trickle.start();
  EXPECT_EQ(trickle.current_interval().us, milliseconds(100).us);
  sim.run_until(SimTime{0} + milliseconds(101));
  EXPECT_EQ(trickle.current_interval().us, milliseconds(200).us);
  sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(10)));
  EXPECT_EQ(trickle.current_interval().us, milliseconds(800).us);
}

TEST(TrickleTest, TransmissionRateDecaysWhenConsistent) {
  Simulator sim;
  int fires = 0;
  TrickleConfig config;
  config.imin = milliseconds(100);
  config.doublings = 6;
  config.redundancy_k = 0;  // no suppression, count interval structure
  Trickle trickle(sim, config, Rng(2), [&] { ++fires; });
  trickle.start();
  sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(1)));
  const int early = fires;
  sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(60)));
  const int late_rate_window = fires;
  sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(120)));
  // In steady state (Imax = 6.4 s) about 9-10 fires per minute.
  const int steady = fires - late_rate_window;
  EXPECT_GE(early, 3);  // several fires in the first second
  EXPECT_LE(steady, 12);
}

TEST(TrickleTest, RedundancySuppresses) {
  Simulator sim;
  int fires = 0;
  TrickleConfig config;
  config.imin = milliseconds(100);
  config.doublings = 2;
  config.redundancy_k = 2;
  Trickle trickle(sim, config, Rng(3), [&] { ++fires; });
  trickle.start();
  // Keep feeding consistency before each potential fire.
  PeriodicTimer feeder(sim, milliseconds(10), [&] {
    trickle.hear_consistent();
    trickle.hear_consistent();
  });
  feeder.start();
  sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(5)));
  EXPECT_EQ(fires, 0);
  EXPECT_GT(trickle.suppressions(), 0u);
}

TEST(TrickleTest, InconsistencyResetsInterval) {
  Simulator sim;
  TrickleConfig config;
  config.imin = milliseconds(100);
  config.doublings = 4;
  Trickle trickle(sim, config, Rng(4), [] {});
  trickle.start();
  sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(2)));
  EXPECT_GT(trickle.current_interval().us, milliseconds(100).us);
  trickle.hear_inconsistent();
  EXPECT_EQ(trickle.current_interval().us, milliseconds(100).us);
}

TEST(TrickleTest, StopHalts) {
  Simulator sim;
  int fires = 0;
  TrickleConfig config;
  config.imin = milliseconds(100);
  Trickle trickle(sim, config, Rng(5), [&] { ++fires; });
  trickle.start();
  trickle.stop();
  sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(2)));
  EXPECT_EQ(fires, 0);
  EXPECT_FALSE(trickle.running());
}

// --- protocol harness -------------------------------------------------

struct ProtoHarness {
  Simulator sim;
  NeighborTable table;
  std::vector<Frame> sent;
  int topology_changes = 0;
  std::unique_ptr<RoutingProtocol> proto;

  RoutingProtocol::Env env() {
    RoutingProtocol::Env e;
    e.send_routing = [this](const Frame& f) { sent.push_back(f); };
    e.on_topology_changed = [this](SimTime) { ++topology_changes; };
    return e;
  }

  /// Simulates hearing a join-in from `from` with the advertisement,
  /// going through the same path the Node uses (table update + handler).
  void hear_join_in(RoutingProtocol& r, NodeId from, std::uint16_t rank,
                    double etxw, double rss = -65.0) {
    table.on_heard(from, rss, rank, etxw, sim.now());
    JoinInPayload payload;
    payload.rank = rank;
    payload.etxw = etxw;
    r.handle_frame(make_frame(FrameType::kJoinIn, from, kNoNode, payload),
                   rss, sim.now());
  }

  void hear_callback(RoutingProtocol& r, NodeId me, NodeId from,
                     bool as_best) {
    table.on_heard_rss(from, -65.0, sim.now());
    JoinedCallbackPayload payload;
    payload.as_best_parent = as_best;
    r.handle_frame(
        make_frame(FrameType::kJoinedCallback, from, me, payload), -65.0,
        sim.now());
  }

  /// Reports `n` consecutive failed unicasts towards `peer`.
  void fail_towards(RoutingProtocol& r, NodeId peer, int n) {
    for (int i = 0; i < n; ++i) {
      table.on_transmission(peer, false);
      r.on_tx_result(peer, FrameType::kData, false, sim.now());
    }
  }

  [[nodiscard]] int callbacks_to(NodeId parent, bool as_best) const {
    int n = 0;
    for (const Frame& f : sent) {
      if (f.type == FrameType::kJoinedCallback && f.dst == parent &&
          f.as<JoinedCallbackPayload>().as_best_parent == as_best) {
        ++n;
      }
    }
    return n;
  }
};

DigsRouting make_digs(ProtoHarness& h, NodeId id, bool is_ap = false,
                      DigsRoutingConfig config = {}) {
  return DigsRouting(h.sim, id, is_ap, h.table, config, Rng(7), h.env());
}

RplRouting make_rpl(ProtoHarness& h, NodeId id, bool is_ap = false,
                    RplRoutingConfig config = {}) {
  return RplRouting(h.sim, id, is_ap, h.table, config, Rng(7), h.env());
}

// --- DiGS Algorithm 1 ---

TEST(DigsRoutingTest, AccessPointInitialState) {
  ProtoHarness h;
  DigsRouting ap = make_digs(h, NodeId{0}, /*is_ap=*/true);
  ap.start(h.sim.now());
  EXPECT_EQ(ap.rank(), kAccessPointRank);
  EXPECT_DOUBLE_EQ(ap.advertised_cost(), 0.0);
  EXPECT_TRUE(ap.joined());
  EXPECT_TRUE(ap.fully_joined());
}

TEST(DigsRoutingTest, FirstJoinInSetsBestParent) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  EXPECT_FALSE(node.joined());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  EXPECT_TRUE(node.joined());
  EXPECT_EQ(node.best_parent(), NodeId{0});
  EXPECT_EQ(node.rank(), 2);  // parent rank + 1
  EXPECT_EQ(h.callbacks_to(NodeId{0}, true), 1);
}

TEST(DigsRoutingTest, SecondJoinInBecomesSecondBestParent) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.hear_join_in(node, NodeId{1}, 1, 0.5, -60.0);  // worse, rank ok
  EXPECT_EQ(node.best_parent(), NodeId{0});
  EXPECT_EQ(node.second_best_parent(), NodeId{1});
  EXPECT_TRUE(node.fully_joined());
  EXPECT_EQ(h.callbacks_to(NodeId{1}, false), 1);
}

TEST(DigsRoutingTest, BetterRouteSwitchesBestParentAndDemotes) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{2}, 1, 2.0, -60.0);  // cost ~3
  EXPECT_EQ(node.best_parent(), NodeId{2});
  EXPECT_EQ(node.rank(), 2);
  // A much better neighbor appears (rank 1, cost ~1).
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  EXPECT_EQ(node.best_parent(), NodeId{0});
  EXPECT_EQ(node.second_best_parent(), NodeId{2});  // demoted (Algorithm 1)
  EXPECT_EQ(node.rank(), 2);
  EXPECT_GE(node.parent_switches(), 1u);
}

TEST(DigsRoutingTest, DemotedParentDroppedIfRankRuleViolated) {
  // When the switch lowers our rank to the demoted parent's level, the
  // equal-rank exclusion removes it from the backup slot.
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{2}, 2, 2.0, -60.0);  // rank -> 3
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);  // rank -> 2
  EXPECT_EQ(node.best_parent(), NodeId{0});
  // Old parent has rank 2 == our new rank: not a legal backup.
  EXPECT_EQ(node.second_best_parent(), kNoNode);
}

TEST(DigsRoutingTest, EqualRankNeighborNeverSecondBest) {
  // Paper's loop-avoidance: the link between equal-rank nodes is not used.
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);  // rank -> 2
  h.hear_join_in(node, NodeId{6}, 2, 0.8, -60.0);  // same rank as ours
  EXPECT_EQ(node.second_best_parent(), kNoNode);
}

TEST(DigsRoutingTest, HysteresisPreventsFlapping) {
  ProtoHarness h;
  DigsRoutingConfig config;
  config.parent_switch_hysteresis = 0.5;
  DigsRouting node = make_digs(h, NodeId{5}, false, config);
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  // Marginally better neighbor: within hysteresis, no switch.
  h.hear_join_in(node, NodeId{1}, 1, -0.1, -60.0);
  EXPECT_EQ(node.best_parent(), NodeId{0});
}

TEST(DigsRoutingTest, EtxwReflectsBothParents) {
  // Use a mid-quality primary link (ETX 2 at -75 dBm) so w2 = 0.25 > 0
  // and the backup path's cost matters (Eq. 1-3).
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -75.0);
  const double single_parent_cost = node.advertised_cost();
  h.hear_join_in(node, NodeId{1}, 1, 0.0, -75.0);
  // With a real backup the surrogate missing-backup penalty disappears.
  EXPECT_LT(node.advertised_cost(), single_parent_cost);
}

TEST(DigsRoutingTest, PerfectPrimaryLinkIgnoresBackupCost) {
  // ETX 1 primary link: w1 = 1, w2 = 0 - the backup does not change ETXw.
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  const double before = node.advertised_cost();
  h.hear_join_in(node, NodeId{1}, 1, 3.0, -60.0);
  EXPECT_NEAR(node.advertised_cost(), before, 1e-9);
}

TEST(DigsRoutingTest, BestParentFailurePromotesBackupSeamlessly) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.hear_join_in(node, NodeId{1}, 1, 0.5, -60.0);
  h.fail_towards(node, NodeId{0}, 12);
  EXPECT_EQ(node.best_parent(), NodeId{1});
  EXPECT_TRUE(node.joined());
  EXPECT_EQ(h.callbacks_to(NodeId{1}, true), 1);  // promoted to best
}

TEST(DigsRoutingTest, SecondBestFailureReplacedFromTable) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.hear_join_in(node, NodeId{1}, 1, 0.5, -60.0);
  h.hear_join_in(node, NodeId{2}, 1, 0.9, -60.0);  // another candidate
  ASSERT_EQ(node.second_best_parent(), NodeId{1});
  h.fail_towards(node, NodeId{1}, 12);
  EXPECT_EQ(node.best_parent(), NodeId{0});
  EXPECT_EQ(node.second_best_parent(), NodeId{2});
}

TEST(DigsRoutingTest, TotalFailureDetaches) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.fail_towards(node, NodeId{0}, 12);
  EXPECT_FALSE(node.joined());
  EXPECT_EQ(node.rank(), NeighborInfo::kInfiniteRank);
  // Poison join-in was emitted.
  bool poisoned = false;
  for (const Frame& f : h.sent) {
    if (f.type == FrameType::kJoinIn &&
        f.as<JoinInPayload>().rank == NeighborInfo::kInfiniteRank) {
      poisoned = true;
    }
  }
  EXPECT_TRUE(poisoned);
}

TEST(DigsRoutingTest, PoisonFromParentTriggersFailover) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.hear_join_in(node, NodeId{1}, 1, 0.5, -60.0);
  h.hear_join_in(node, NodeId{0}, NeighborInfo::kInfiniteRank,
                 NeighborInfo::kInfiniteEtx, -60.0);
  EXPECT_EQ(node.best_parent(), NodeId{1});
}

TEST(DigsRoutingTest, CallbackRegistersChild) {
  ProtoHarness h;
  DigsRouting ap = make_digs(h, NodeId{0}, /*is_ap=*/true);
  ap.start(h.sim.now());
  h.hear_callback(ap, NodeId{0}, NodeId{5}, true);
  ASSERT_EQ(ap.children().size(), 1u);
  EXPECT_EQ(ap.children()[0].id, NodeId{5});
  EXPECT_TRUE(ap.children()[0].as_best);
  // Role change updates, does not duplicate.
  h.hear_callback(ap, NodeId{0}, NodeId{5}, false);
  ASSERT_EQ(ap.children().size(), 1u);
  EXPECT_FALSE(ap.children()[0].as_best);
}

TEST(DigsRoutingTest, ChildrenPrunedAfterTimeout) {
  ProtoHarness h;
  DigsRoutingConfig config;
  config.child_timeout = seconds(static_cast<std::int64_t>(60));
  DigsRouting ap = make_digs(h, NodeId{0}, /*is_ap=*/true, config);
  ap.start(h.sim.now());
  h.hear_callback(ap, NodeId{0}, NodeId{5}, true);
  EXPECT_EQ(ap.children().size(), 1u);
  h.sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(120)));
  EXPECT_EQ(ap.children().size(), 0u);
}

TEST(DigsRoutingTest, StopForgetsParents) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  node.stop(h.sim.now());
  EXPECT_FALSE(node.joined());
  EXPECT_EQ(node.rank(), NeighborInfo::kInfiniteRank);
}

TEST(DigsRoutingTest, JoinInTransmittedByTrickleAfterJoining) {
  ProtoHarness h;
  DigsRoutingConfig config;
  config.trickle.imin = milliseconds(100);
  DigsRouting node = make_digs(h, NodeId{5}, false, config);
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(1)));
  int join_ins = 0;
  for (const Frame& f : h.sent) {
    if (f.type == FrameType::kJoinIn) ++join_ins;
  }
  EXPECT_GE(join_ins, 1);
}

TEST(DigsRoutingTest, UnjoinedNodeSolicitsJoinIns) {
  // RPL DIS analogue: a started (synchronized) but parentless node
  // periodically broadcasts a join solicitation.
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(30)));
  int solicits = 0;
  for (const Frame& f : h.sent) {
    if (f.type == FrameType::kJoinSolicit) ++solicits;
  }
  EXPECT_GE(solicits, 2);
}

TEST(DigsRoutingTest, JoinedNodeStopsSoliciting) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  const auto before = h.sent.size();
  h.sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(30)));
  for (std::size_t i = before; i < h.sent.size(); ++i) {
    EXPECT_NE(h.sent[i].type, FrameType::kJoinSolicit);
  }
}

TEST(DigsRoutingTest, SolicitResetsTrickleOfJoinedNeighbor) {
  ProtoHarness h;
  DigsRoutingConfig config;
  config.trickle.imin = milliseconds(200);
  config.trickle.doublings = 6;
  DigsRouting ap = make_digs(h, NodeId{0}, /*is_ap=*/true, config);
  ap.start(h.sim.now());
  h.sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(60)));
  ASSERT_GT(ap.trickle().current_interval().us, milliseconds(200).us);
  ap.handle_frame(make_frame(FrameType::kJoinSolicit, NodeId{9}, kNoNode,
                             JoinSolicitPayload{}),
                  -70.0, h.sim.now());
  EXPECT_EQ(ap.trickle().current_interval().us, milliseconds(200).us);
}

TEST(DigsRoutingTest, KeepaliveProbesIdleParentLink) {
  // A joined node with no unicast feedback re-sends its joined-callback
  // periodically (TSCH keepalive semantics).
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  const auto count_callbacks = [&] {
    int n = 0;
    for (const Frame& f : h.sent) {
      if (f.type == FrameType::kJoinedCallback && f.dst == NodeId{0}) ++n;
    }
    return n;
  };
  const int initial = count_callbacks();
  h.sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(120)));
  EXPECT_GT(count_callbacks(), initial);
}

TEST(DigsRoutingTest, CallbackAckConfirmsRole) {
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  EXPECT_EQ(node.best_parent_confirmed(), ConfirmedRole::kNone);
  node.on_tx_result(NodeId{0}, FrameType::kJoinedCallback, true,
                    h.sim.now());
  EXPECT_EQ(node.best_parent_confirmed(), ConfirmedRole::kPrimary);
}

TEST(DigsRoutingTest, ChildNeverBecomesParent) {
  // Local loop protection: a node that registered us as its parent cannot
  // become our parent, however good its advertisement looks.
  ProtoHarness h;
  DigsRouting node = make_digs(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{2}, 2, 3.0, -60.0);  // mediocre parent
  h.hear_callback(node, NodeId{5}, NodeId{9}, true);  // 9 is our child
  h.hear_join_in(node, NodeId{9}, 1, 0.0, -60.0);  // child looks great
  EXPECT_EQ(node.best_parent(), NodeId{2});
  EXPECT_NE(node.second_best_parent(), NodeId{9});
}

TEST(RplRoutingTest, ChildNeverBecomesParent) {
  ProtoHarness h;
  RplRouting node = make_rpl(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{2}, 2, 3.0, -60.0);
  h.hear_callback(node, NodeId{5}, NodeId{9}, true);
  h.hear_join_in(node, NodeId{9}, 1, 0.0, -60.0);
  EXPECT_EQ(node.best_parent(), NodeId{2});
}

// --- RPL baseline ---

TEST(RplRoutingTest, SingleParentNoBackup) {
  ProtoHarness h;
  RplRouting node = make_rpl(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.hear_join_in(node, NodeId{1}, 1, 0.5, -60.0);
  EXPECT_EQ(node.best_parent(), NodeId{0});
  EXPECT_EQ(node.second_best_parent(), kNoNode);  // by design
}

TEST(RplRoutingTest, AdvertisesAccumulatedEtx) {
  ProtoHarness h;
  RplRouting node = make_rpl(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 1.5, -60.0);
  // link etx ~1 + advertised 1.5
  EXPECT_NEAR(node.advertised_cost(), 2.5, 0.3);
}

TEST(RplRoutingTest, SwitchesToBetterParent) {
  ProtoHarness h;
  RplRouting node = make_rpl(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{2}, 2, 3.0, -60.0);
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  EXPECT_EQ(node.best_parent(), NodeId{0});
  EXPECT_EQ(node.rank(), 2);
}

TEST(RplRoutingTest, ParentFailureNeedsRepair) {
  ProtoHarness h;
  RplRouting node = make_rpl(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.hear_join_in(node, NodeId{1}, 1, 0.5, -60.0);  // known alternative
  h.fail_towards(node, NodeId{0}, 12);
  // Repairs to the alternative (but had an outage window in real traffic).
  EXPECT_EQ(node.best_parent(), NodeId{1});
}

TEST(RplRoutingTest, NoAlternativeDetachesAndPoisons) {
  ProtoHarness h;
  RplRouting node = make_rpl(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.fail_towards(node, NodeId{0}, 12);
  EXPECT_FALSE(node.joined());
  bool poisoned = false;
  for (const Frame& f : h.sent) {
    if (f.type == FrameType::kJoinIn &&
        f.as<JoinInPayload>().rank == NeighborInfo::kInfiniteRank) {
      poisoned = true;
    }
  }
  EXPECT_TRUE(poisoned);
}

TEST(RplRoutingTest, PoisonFromParentDetaches) {
  ProtoHarness h;
  RplRouting node = make_rpl(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 0.0, -60.0);
  h.hear_join_in(node, NodeId{0}, NeighborInfo::kInfiniteRank,
                 NeighborInfo::kInfiniteEtx, -60.0);
  EXPECT_FALSE(node.joined());
}

TEST(RplRoutingTest, EqualRankParentNotSelected) {
  ProtoHarness h;
  RplRouting node = make_rpl(h, NodeId{5});
  node.start(h.sim.now());
  h.hear_join_in(node, NodeId{0}, 1, 2.0, -88.0);  // weak link to AP
  ASSERT_EQ(node.rank(), 2);
  // Equal-rank neighbor with better cost must not become parent.
  h.hear_join_in(node, NodeId{6}, 2, 0.1, -60.0);
  EXPECT_EQ(node.best_parent(), NodeId{0});
}

}  // namespace
}  // namespace digs
