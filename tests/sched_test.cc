// Unit tests for the autonomous schedulers (paper Section VI) and the
// slotframe conflict analysis (Eq. 5-6).
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "sched/conflict_analysis.h"
#include "sched/digs_scheduler.h"
#include "sched/orchestra_scheduler.h"

namespace digs {
namespace {

SchedulerConfig paper_example_config() {
  // Fig. 7: slotframe lengths 61 / 11 / 7.
  SchedulerConfig config;
  config.sync_slotframe_len = 61;
  config.routing_slotframe_len = 11;
  config.app_slotframe_len = 7;
  config.attempts = 3;
  return config;
}

RoutingView device_view(NodeId id, NodeId bp, NodeId sbp,
                        std::vector<ChildEntry> children = {}) {
  static std::vector<ChildEntry> storage;
  storage = std::move(children);
  RoutingView view;
  view.id = id;
  view.is_access_point = false;
  view.num_access_points = 2;
  view.best_parent = bp;
  view.second_best_parent = sbp;
  view.children = storage;
  return view;
}

// --- DiGS scheduler ---

TEST(DigsSchedulerTest, Eq4SlotAssignment) {
  DigsScheduler scheduler(paper_example_config());
  // First field device (id 2 with 2 APs): slots 1, 2, 3.
  EXPECT_EQ(scheduler.app_tx_slot(NodeId{2}, 2, 1), 1);
  EXPECT_EQ(scheduler.app_tx_slot(NodeId{2}, 2, 2), 2);
  EXPECT_EQ(scheduler.app_tx_slot(NodeId{2}, 2, 3), 3);
  // Second field device: slots 4, 5, 6.
  EXPECT_EQ(scheduler.app_tx_slot(NodeId{3}, 2, 1), 4);
  EXPECT_EQ(scheduler.app_tx_slot(NodeId{3}, 2, 3), 6);
}

TEST(DigsSchedulerTest, SlotsWrapModuloLength) {
  DigsScheduler scheduler(paper_example_config());
  // Third device would need slot 7 == length -> wraps to 0.
  EXPECT_EQ(scheduler.app_tx_slot(NodeId{4}, 2, 1), 0);
}

TEST(DigsSchedulerTest, DistinctDevicesDistinctSlots) {
  SchedulerConfig config;
  config.app_slotframe_len = 151;
  config.attempts = 3;
  DigsScheduler scheduler(config);
  std::set<std::uint16_t> slots;
  // 50 devices x 3 attempts = 150 slots, all distinct within 151.
  for (std::uint16_t id = 2; id < 52; ++id) {
    for (int p = 1; p <= 3; ++p) {
      slots.insert(scheduler.app_tx_slot(NodeId{id}, 2, p));
    }
  }
  EXPECT_EQ(slots.size(), 150u);
}

TEST(DigsSchedulerTest, TxCellsFollowAttemptLadder) {
  DigsScheduler scheduler(paper_example_config());
  Schedule schedule;
  scheduler.rebuild(schedule,
                    device_view(NodeId{2}, NodeId{0}, NodeId{1}));
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  ASSERT_NE(app, nullptr);
  int to_best = 0;
  int to_backup = 0;
  for (const Cell& cell : app->cells) {
    if (cell.option != CellOption::kTx) continue;
    if (cell.attempt < 3) {
      EXPECT_EQ(cell.peer, NodeId{0});
      ++to_best;
    } else {
      EXPECT_EQ(cell.peer, NodeId{1});
      ++to_backup;
    }
  }
  EXPECT_EQ(to_best, 2);
  EXPECT_EQ(to_backup, 1);
}

TEST(DigsSchedulerTest, NoBackupParentFallsBackToPrimary) {
  DigsScheduler scheduler(paper_example_config());
  Schedule schedule;
  scheduler.rebuild(schedule, device_view(NodeId{2}, NodeId{0}, kNoNode));
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  for (const Cell& cell : app->cells) {
    if (cell.option == CellOption::kTx) {
      EXPECT_EQ(cell.peer, NodeId{0});
    }
  }
}

TEST(DigsSchedulerTest, UnjoinedDeviceHasNoAppTxCells) {
  DigsScheduler scheduler(paper_example_config());
  Schedule schedule;
  scheduler.rebuild(schedule, device_view(NodeId{2}, kNoNode, kNoNode));
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  EXPECT_TRUE(app->cells.empty());
}

TEST(DigsSchedulerTest, ParentInstallsMirrorRxCells) {
  DigsScheduler scheduler(paper_example_config());
  Schedule schedule;
  // We listen on both children's whole attempt ladders regardless of our
  // role for them, so a role change (backup promotion) never finds us
  // deaf.
  scheduler.rebuild(
      schedule,
      device_view(NodeId{2}, NodeId{0}, NodeId{1},
                  {ChildEntry{NodeId{3}, true, {}},
                   ChildEntry{NodeId{4}, false, {}}}));
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  int rx_child3 = 0;
  int rx_child4 = 0;
  for (const Cell& cell : app->cells) {
    if (cell.option != CellOption::kRx) continue;
    if (cell.peer == NodeId{3}) {
      EXPECT_EQ(cell.slot_offset,
                scheduler.app_tx_slot(NodeId{3}, 2, cell.attempt));
      ++rx_child3;
    }
    if (cell.peer == NodeId{4}) {
      EXPECT_EQ(cell.slot_offset,
                scheduler.app_tx_slot(NodeId{4}, 2, cell.attempt));
      ++rx_child4;
    }
  }
  EXPECT_EQ(rx_child3, 3);
  EXPECT_EQ(rx_child4, 3);
}

TEST(DigsSchedulerTest, ChannelOffsetsAgreeBetweenChildAndParent) {
  DigsScheduler scheduler(paper_example_config());
  Schedule child_schedule;
  scheduler.rebuild(child_schedule,
                    device_view(NodeId{3}, NodeId{2}, kNoNode));
  Schedule parent_schedule;
  scheduler.rebuild(
      parent_schedule,
      device_view(NodeId{2}, NodeId{0}, kNoNode,
                  {ChildEntry{NodeId{3}, true, {}}}));
  const Slotframe* child_app =
      child_schedule.slotframe(TrafficClass::kApplication);
  const Slotframe* parent_app =
      parent_schedule.slotframe(TrafficClass::kApplication);
  for (const Cell& tx : child_app->cells) {
    if (tx.option != CellOption::kTx || tx.attempt >= 3) continue;
    bool matched = false;
    for (const Cell& rx : parent_app->cells) {
      if (rx.option == CellOption::kRx && rx.peer == NodeId{3} &&
          rx.slot_offset == tx.slot_offset &&
          rx.channel_offset == tx.channel_offset) {
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << "attempt " << static_cast<int>(tx.attempt);
  }
}

TEST(DigsSchedulerTest, SyncCellsPerPaper) {
  DigsScheduler scheduler(paper_example_config());
  Schedule schedule;
  scheduler.rebuild(schedule, device_view(NodeId{3}, NodeId{2}, kNoNode));
  const Slotframe* sync = schedule.slotframe(TrafficClass::kSync);
  ASSERT_NE(sync, nullptr);
  bool has_own_eb_tx = false;
  bool has_parent_eb_rx = false;
  for (const Cell& cell : sync->cells) {
    if (cell.option == CellOption::kTx && cell.slot_offset == 3) {
      has_own_eb_tx = true;  // "node i uses the ith slot"
    }
    if (cell.option == CellOption::kRx && cell.slot_offset == 2 &&
        cell.peer == NodeId{2}) {
      has_parent_eb_rx = true;  // "jth slot to receive EB from best parent"
    }
  }
  EXPECT_TRUE(has_own_eb_tx);
  EXPECT_TRUE(has_parent_eb_rx);
}

TEST(DigsSchedulerTest, SharedRoutingSlotIdenticalForAllNodes) {
  DigsScheduler scheduler(paper_example_config());
  Schedule a;
  Schedule b;
  scheduler.rebuild(a, device_view(NodeId{2}, NodeId{0}, kNoNode));
  scheduler.rebuild(b, device_view(NodeId{9}, NodeId{3}, kNoNode));
  const Slotframe* ra = a.slotframe(TrafficClass::kRouting);
  const Slotframe* rb = b.slotframe(TrafficClass::kRouting);
  ASSERT_EQ(ra->cells.size(), 1u);
  ASSERT_EQ(rb->cells.size(), 1u);
  EXPECT_EQ(ra->cells[0].slot_offset, rb->cells[0].slot_offset);
  EXPECT_EQ(ra->cells[0].channel_offset, rb->cells[0].channel_offset);
  EXPECT_EQ(ra->cells[0].option, CellOption::kShared);
}

TEST(DigsSchedulerTest, PaperSlotframeLengthsCoprime) {
  const SchedulerConfig config;  // 557 / 47 / 151
  EXPECT_EQ(std::gcd(config.sync_slotframe_len,
                     config.routing_slotframe_len), 1);
  EXPECT_EQ(std::gcd(config.sync_slotframe_len, config.app_slotframe_len), 1);
  EXPECT_EQ(std::gcd(config.routing_slotframe_len, config.app_slotframe_len),
            1);
  // Fig. 7 example: 61 * 11 * 7 = 4697 combined slots.
  const SchedulerConfig example = paper_example_config();
  EXPECT_EQ(static_cast<int>(example.sync_slotframe_len) *
                example.routing_slotframe_len * example.app_slotframe_len,
            4697);
}

TEST(DigsSchedulerTest, AttemptChannelsDecorrelated) {
  // Successive attempts of the same packet must land on different channel
  // offsets, so one jammed WiFi block (4 adjacent channels) cannot kill a
  // whole attempt ladder.
  int distinct_pairs = 0;
  int total_pairs = 0;
  for (std::uint16_t id = 2; id < 60; ++id) {
    for (int p = 1; p < 3; ++p) {
      ++total_pairs;
      if (attempt_channel_offset(NodeId{id}, p) !=
          attempt_channel_offset(NodeId{id}, p + 1)) {
        ++distinct_pairs;
      }
    }
  }
  // Hash-based: expect the overwhelming majority distinct.
  EXPECT_GT(distinct_pairs, total_pairs * 8 / 10);
}

// --- Orchestra scheduler ---

TEST(OrchestraSchedulerTest, SenderBasedCells) {
  OrchestraScheduler scheduler(paper_example_config());
  EXPECT_TRUE(scheduler.sender_based());
  Schedule schedule;
  scheduler.rebuild(schedule, device_view(NodeId{3}, NodeId{2}, kNoNode));
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  ASSERT_NE(app, nullptr);
  int rx = 0;
  int tx = 0;
  for (const Cell& cell : app->cells) {
    if (cell.option == CellOption::kRx) ++rx;
    if (cell.option == CellOption::kTx) {
      EXPECT_EQ(cell.peer, NodeId{2});
      // Sender-based: TX in our OWN slot.
      EXPECT_EQ(cell.slot_offset, scheduler.unicast_slot(NodeId{3}));
      ++tx;
    }
  }
  EXPECT_EQ(rx, 0);  // no children -> no RX cells
  EXPECT_EQ(tx, 1);
}

TEST(OrchestraSchedulerTest, SenderBasedParentListensPerChild) {
  OrchestraScheduler scheduler(paper_example_config());
  Schedule schedule;
  scheduler.rebuild(
      schedule,
      device_view(NodeId{2}, NodeId{0}, kNoNode,
                  {ChildEntry{NodeId{3}, true, {}},
                   ChildEntry{NodeId{4}, true, {}}}));
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  int rx = 0;
  for (const Cell& cell : app->cells) {
    if (cell.option != CellOption::kRx) continue;
    EXPECT_EQ(cell.slot_offset, scheduler.unicast_slot(cell.peer));
    ++rx;
  }
  EXPECT_EQ(rx, 2);
}

TEST(OrchestraSchedulerTest, SendersSpreadAcrossUnicastFrame) {
  // Sender-based slots avoid *persistent sibling* collisions; hash
  // collisions across the short unicast frame exist but co-channel overlap
  // (same slot AND same channel offset) must stay rare.
  SchedulerConfig config;
  OrchestraScheduler scheduler(config);
  std::set<std::uint16_t> used;
  std::set<std::pair<std::uint16_t, ChannelOffset>> slot_channel;
  int cochannel = 0;
  for (std::uint16_t id = 0; id < 52; ++id) {
    const std::uint16_t slot = scheduler.unicast_slot(NodeId{id});
    EXPECT_LT(slot, config.orchestra_unicast_len);
    used.insert(slot);
    if (!slot_channel.emplace(slot, tx_channel_offset(NodeId{id})).second) {
      ++cochannel;
    }
  }
  EXPECT_GE(used.size(), 25u);  // well spread over 53 slots
  EXPECT_LE(cochannel, 3);
}

TEST(OrchestraSchedulerTest, ReceiverBasedVariant) {
  OrchestraScheduler scheduler(paper_example_config(),
                               /*sender_based=*/false);
  Schedule schedule;
  scheduler.rebuild(schedule, device_view(NodeId{3}, NodeId{2}, kNoNode));
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  int rx = 0;
  int tx = 0;
  for (const Cell& cell : app->cells) {
    if (cell.option == CellOption::kRx) {
      EXPECT_EQ(cell.slot_offset, scheduler.unicast_slot(NodeId{3}));
      ++rx;
    }
    if (cell.option == CellOption::kTx) {
      // Receiver-based: TX in the PARENT's slot.
      EXPECT_EQ(cell.slot_offset, scheduler.unicast_slot(NodeId{2}));
      ++tx;
    }
  }
  EXPECT_EQ(rx, 1);
  EXPECT_EQ(tx, 1);
}

TEST(OrchestraSchedulerTest, ReceiverBasedRxAlwaysInstalled) {
  OrchestraScheduler scheduler(paper_example_config(),
                               /*sender_based=*/false);
  Schedule schedule;
  scheduler.rebuild(schedule, device_view(NodeId{3}, kNoNode, kNoNode));
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  ASSERT_EQ(app->cells.size(), 1u);
  EXPECT_EQ(app->cells[0].option, CellOption::kRx);
}

TEST(OrchestraSchedulerTest, SingleTxAttemptPerCycle) {
  OrchestraScheduler scheduler(paper_example_config());
  Schedule schedule;
  scheduler.rebuild(schedule,
                    device_view(NodeId{3}, NodeId{2}, NodeId{1}));
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  int tx = 0;
  for (const Cell& cell : app->cells) {
    if (cell.option == CellOption::kTx) ++tx;
  }
  EXPECT_EQ(tx, 1);  // Orchestra: one attempt per slotframe, single parent
}

TEST(OrchestraSchedulerTest, SenderAndReceiverAgree) {
  OrchestraScheduler scheduler(paper_example_config());
  Schedule child;
  scheduler.rebuild(child, device_view(NodeId{5}, NodeId{4}, kNoNode));
  Schedule parent;
  scheduler.rebuild(parent,
                    device_view(NodeId{4}, NodeId{0}, kNoNode,
                                {ChildEntry{NodeId{5}, true, {}}}));
  const Cell* child_tx = nullptr;
  for (const Cell& cell :
       child.slotframe(TrafficClass::kApplication)->cells) {
    if (cell.option == CellOption::kTx) child_tx = &cell;
  }
  const Cell* parent_rx = nullptr;
  for (const Cell& cell :
       parent.slotframe(TrafficClass::kApplication)->cells) {
    if (cell.option == CellOption::kRx) parent_rx = &cell;
  }
  ASSERT_NE(child_tx, nullptr);
  ASSERT_NE(parent_rx, nullptr);
  EXPECT_EQ(child_tx->slot_offset, parent_rx->slot_offset);
  EXPECT_EQ(child_tx->channel_offset, parent_rx->channel_offset);
}

// --- conflict analysis (Eq. 5-6) ---

TEST(ConflictAnalysisTest, Eq5Limits) {
  EXPECT_DOUBLE_EQ(shared_slot_contention_probability(0.0, 10, 47), 0.0);
  // Long slotframe relative to N: more contention per Eq. 5's first branch.
  const double long_frame = shared_slot_contention_probability(0.1, 10, 47);
  const double short_frame = shared_slot_contention_probability(0.1, 100, 47);
  EXPECT_GT(long_frame, 0.0);
  EXPECT_GT(long_frame, short_frame);
}

TEST(ConflictAnalysisTest, Eq5MonotoneInLoad) {
  double last = 0.0;
  for (double load = 0.0; load <= 2.0; load += 0.1) {
    const double p = shared_slot_contention_probability(load, 50, 47);
    EXPECT_GE(p, last);
    last = p;
  }
  EXPECT_LT(last, 1.0 + 1e-12);
}

TEST(ConflictAnalysisTest, Eq6HighestPriorityNeverSkipped) {
  const std::vector<SlotframeLoad> frames{
      {557, 2, 0}, {47, 1, 1}, {151, 3, 2}};
  EXPECT_DOUBLE_EQ(slotframe_skip_probability(frames[0], frames), 0.0);
}

TEST(ConflictAnalysisTest, Eq6LowerPriorityAccumulates) {
  const std::vector<SlotframeLoad> frames{
      {557, 2, 0}, {47, 1, 1}, {151, 3, 2}};
  const double routing_skip = slotframe_skip_probability(frames[1], frames);
  const double app_skip = slotframe_skip_probability(frames[2], frames);
  // Routing only conflicts with sync (2/557); app with sync and routing.
  EXPECT_NEAR(routing_skip, 2.0 / 557.0, 1e-12);
  EXPECT_NEAR(app_skip, 1.0 - (1.0 - 2.0 / 557.0) * (1.0 - 1.0 / 47.0),
              1e-12);
  EXPECT_GT(app_skip, routing_skip);
  // "expected to be very low in practice" (paper Section VI-B)
  EXPECT_LT(app_skip, 0.03);
}

TEST(ConflictAnalysisTest, MeasuredSkipMatchesModel) {
  // Build a real schedule and compare the measured skip rate of the
  // application class against Eq. 6.
  SchedulerConfig config;  // paper lengths
  DigsScheduler scheduler(config);
  Schedule schedule;
  RoutingView view;
  view.id = NodeId{5};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.second_best_parent = NodeId{1};
  scheduler.rebuild(schedule, view);

  const Slotframe* sync = schedule.slotframe(TrafficClass::kSync);
  const Slotframe* routing = schedule.slotframe(TrafficClass::kRouting);
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  const std::vector<SlotframeLoad> loads{
      {sync->length, static_cast<int>(sync->cells.size()), 0},
      {routing->length, static_cast<int>(routing->cells.size()), 1},
      {app->length, static_cast<int>(app->cells.size()), 2},
  };
  const double model = slotframe_skip_probability(loads[2], loads);
  const double measured = measured_skip_rate(
      schedule, TrafficClass::kApplication, 557ULL * 47 * 151);
  EXPECT_NEAR(measured, model, 0.01);
}

}  // namespace
}  // namespace digs
