// Shard- and thread-count invariance: every (shards, threads) combination
// must be BIT-IDENTICAL to the serial run.
//
// The sharded slot pipeline runs settle+plan, reception resolution,
// deliver+outcomes, energy+end_slot, and wake refresh per shard, but every
// per-pair draw is hashed from (seed, asn, listener, sender), shards write
// disjoint per-node state, and every hook or simulator side effect raised
// inside a parallel region is deferred and replayed in serial program
// order after the barrier — so PDR, energy, desync, and every other
// observable must match exactly (no tolerances) across the full
// {1, 2, 8} shards x {1, 2, 4} worker-threads matrix, including under a
// fault script with clock drift enabled. Also pins that compact (sparse
// CSR) medium storage reproduces the flat-table results bit-for-bit, and
// that a deployment wide enough to activate the spatial grid stays
// invariant with cell-based shard assignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/fault_script.h"
#include "testbed/experiment.h"
#include "testbed/layouts.h"

namespace digs {
namespace {

struct RunSnapshot {
  ExperimentResult result;
  std::uint64_t final_asn{0};
  std::vector<std::uint64_t> data_tx_attempts;
  std::vector<std::uint64_t> eb_sent;
  std::vector<double> energy_mj;
};

ExperimentConfig small_config(ProtocolSuite suite, std::uint64_t seed) {
  ExperimentConfig config;
  config.suite = suite;
  config.seed = seed;
  config.num_flows = 4;
  config.warmup = seconds(std::int64_t{60});
  config.duration = seconds(std::int64_t{60});
  config.stat_drain = seconds(std::int64_t{10});
  config.num_jammers = 0;
  return config;
}

RunSnapshot run_once(const TestbedLayout& layout, ExperimentConfig config,
                     std::size_t shards, std::size_t threads = 1) {
  config.shards = shards;
  config.shard_threads = threads;
  ExperimentRunner runner(layout, config);
  RunSnapshot snap;
  snap.result = runner.run();
  Network& net = runner.network();
  EXPECT_EQ(net.num_shards(), shards);
  // Worker count is clamped to [1, shards] (and pinned to 1 unsharded):
  // requesting more threads than shards must degrade gracefully, never
  // spawn idle workers.
  EXPECT_EQ(net.num_shard_threads(),
            shards > 1 ? std::min(threads, shards) : 1);
  snap.final_asn = net.current_asn();
  for (std::size_t i = 0; i < net.size(); ++i) {
    const Node& node = net.node(NodeId{static_cast<std::uint16_t>(i)});
    snap.data_tx_attempts.push_back(node.mac().data_tx_attempts());
    snap.eb_sent.push_back(node.mac().eb_sent());
    snap.energy_mj.push_back(node.meter().energy_mj());
  }
  return snap;
}

void expect_identical(const RunSnapshot& sharded, const RunSnapshot& serial) {
  EXPECT_EQ(sharded.final_asn, serial.final_asn);
  EXPECT_EQ(sharded.result.generated, serial.result.generated);
  EXPECT_EQ(sharded.result.delivered, serial.result.delivered);
  EXPECT_EQ(sharded.result.flow_pdrs, serial.result.flow_pdrs);
  EXPECT_EQ(sharded.result.latencies_ms, serial.result.latencies_ms);
  EXPECT_EQ(sharded.result.overall_pdr, serial.result.overall_pdr);
  EXPECT_EQ(sharded.data_tx_attempts, serial.data_tx_attempts);
  EXPECT_EQ(sharded.eb_sent, serial.eb_sent);
  EXPECT_EQ(sharded.result.join_times_s, serial.result.join_times_s);
  // Bit-identical means exactly equal — EXPECT_DOUBLE_EQ's 4-ULP tolerance
  // would mask accumulation-order drift in a racy merge.
  EXPECT_EQ(sharded.energy_mj, serial.energy_mj);
  EXPECT_EQ(sharded.result.duty_cycle, serial.result.duty_cycle);
  EXPECT_EQ(sharded.result.guard_misses, serial.result.guard_misses);
  EXPECT_EQ(sharded.result.desync_events, serial.result.desync_events);
  EXPECT_EQ(sharded.result.clock_corrections, serial.result.clock_corrections);
}

// A deployment wide enough (and at a shallow enough path-loss exponent)
// that the decode-radius grid spans several cells per axis: the coupling
// cutoff and cell-based shard assignment are actually exercised, unlike
// the paper-scale layouts that fit within a 2x2 block.
TestbedLayout city_layout() {
  TestbedLayout layout;
  layout.name = "city-grid";
  layout.num_access_points = 4;
  layout.path_loss_exponent = 3.5;
  const int side = 11;           // 121 nodes on a jittered grid
  const double pitch = 60.0;     // ~600 m square => several ~114 m cells
  layout.positions.reserve(side * side);
  // APs first (layout contract), spread across the quadrants.
  layout.positions.push_back({150.0, 150.0, 0.0});
  layout.positions.push_back({450.0, 150.0, 0.0});
  layout.positions.push_back({150.0, 450.0, 0.0});
  layout.positions.push_back({450.0, 450.0, 0.0});
  for (int gy = 0; gy < side; ++gy) {
    for (int gx = 0; gx < side; ++gx) {
      if (layout.positions.size() >= static_cast<std::size_t>(side * side)) {
        break;
      }
      // Deterministic jitter so rows don't alias the cell boundaries.
      const double jx = ((gx * 7 + gy * 13) % 10) - 4.5;
      const double jy = ((gx * 11 + gy * 3) % 10) - 4.5;
      layout.positions.push_back({gx * pitch + jx, gy * pitch + jy, 0.0});
    }
  }
  return layout;
}

class ShardInvariance
    : public ::testing::TestWithParam<std::tuple<ProtocolSuite, std::uint64_t>> {
};

TEST_P(ShardInvariance, BitIdenticalAcrossShardAndThreadMatrix) {
  const auto [suite, seed] = GetParam();
  const ExperimentConfig config = small_config(suite, seed);
  const TestbedLayout layout = half_testbed_a();
  const RunSnapshot serial = run_once(layout, config, 1, 1);
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      if (shards == 1 && threads == 1) continue;  // the reference itself
      const RunSnapshot sharded = run_once(layout, config, shards, threads);
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      expect_identical(sharded, serial);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SuitesAndSeeds, ShardInvariance,
    ::testing::Combine(::testing::Values(ProtocolSuite::kDigs,
                                         ProtocolSuite::kOrchestra,
                                         ProtocolSuite::kWirelessHart),
                       ::testing::Values(std::uint64_t{11},
                                         std::uint64_t{12})),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// The hard case: guard misses and desyncs (clock drift) plus crash/recover
// and blackout faults, resolved in parallel. Guard misses are counted
// per shard and summed; the totals and every downstream metric must still
// match the serial run exactly.
TEST(ShardInvarianceFaultsAndDrift, BitIdenticalUnderFaultScript) {
  ExperimentConfig config = small_config(ProtocolSuite::kDigs, 9);
  config.clock_ppm = 40.0;
  config.clock_walk_ppm = 5.0;
  config.faults.crash_cycle(seconds(std::int64_t{10}), NodeId{6},
                            seconds(std::int64_t{15}),
                            seconds(std::int64_t{20}), 2);
  config.faults.blackout(seconds(std::int64_t{20}), NodeId{2}, NodeId{7},
                         seconds(std::int64_t{25}));
  const TestbedLayout layout = half_testbed_a();
  const RunSnapshot serial = run_once(layout, config, 1, 1);
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      if (shards == 1 && threads == 1) continue;
      const RunSnapshot sharded = run_once(layout, config, shards, threads);
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      expect_identical(sharded, serial);
    }
  }
  // The drift path actually engaged.
  EXPECT_GT(serial.result.clock_corrections, 0u);
}

// Active spatial grid (multi-cell deployment, cell-based shard assignment,
// coupling cutoff pruning real pairs): still bit-identical across shard
// counts.
TEST(ShardInvarianceCityGrid, BitIdenticalWithActiveGrid) {
  ExperimentConfig config = small_config(ProtocolSuite::kDigs, 3);
  config.num_flows = 8;
  const TestbedLayout layout = city_layout();
  const RunSnapshot serial = run_once(layout, config, 1);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const RunSnapshot sharded = run_once(layout, config, 4, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(sharded, serial);
  }
  // The scenario is not degenerate: traffic flows.
  EXPECT_GT(serial.result.delivered, 0u);
}

// Compact-mode (sparse CSR) storage must reproduce the flat-table run
// bit-for-bit: the CSR means are the same doubles, the link keys feed the
// same fading draws, and the coupling cutoff is applied identically in
// both modes. Forcing flat_table_max_nodes = 0 puts a small layout on the
// compact path where every pair is still coupled (2x2 grid) on
// half_testbed_a, and on the pruning path for the city layout.
TEST(SparseMediumEquivalence, CompactMatchesFlatBitForBit) {
  for (const bool city : {false, true}) {
    const TestbedLayout layout = city ? city_layout() : half_testbed_a();
    ExperimentConfig config = small_config(ProtocolSuite::kDigs, 4);
    const RunSnapshot flat = run_once(layout, config, 1);
    config.medium_flat_table_max_nodes = 0;  // force compact mode
    const RunSnapshot sparse = run_once(layout, config, 1);
    SCOPED_TRACE(city ? "city" : "half_testbed_a");
    expect_identical(sparse, flat);
  }
}

}  // namespace
}  // namespace digs
