// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace digs {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now().us, 0);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  sim.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  sim.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimeFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime{100}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime{12345}, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.us, 12345);
  EXPECT_EQ(sim.now().us, 12345);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime{100}, [&] { ++fired; });
  sim.schedule_at(SimTime{200}, [&] { ++fired; });
  sim.run_until(SimTime{150});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().us, 150);
  sim.run_until(SimTime{250});
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(SimTime{5000});
  EXPECT_EQ(sim.now().us, 5000);
}

TEST(SimulatorTest, ScheduleAfter) {
  Simulator sim;
  sim.schedule_at(SimTime{100}, [&] {
    sim.schedule_after(SimDuration{50}, [&] {
      EXPECT_EQ(sim.now().us, 150);
    });
  });
  sim.run();
  EXPECT_EQ(sim.now().us, 150);
}

TEST(SimulatorTest, EventsScheduledDuringRun) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_after(SimDuration{10}, chain);
  };
  sim.schedule_at(SimTime{0}, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now().us, 40);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle handle =
      sim.schedule_at(SimTime{100}, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, HandleNotPendingAfterFire) {
  Simulator sim;
  EventHandle handle = sim.schedule_at(SimTime{10}, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // harmless no-op
}

TEST(SimulatorTest, DefaultHandleInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();
}

TEST(SimulatorTest, PendingEventCount) {
  Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  auto h1 = sim.schedule_at(SimTime{10}, [] {});
  auto h2 = sim.schedule_at(SimTime{20}, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  h1.cancel();
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  (void)h2;
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_at(SimTime{i * 10}, [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorTest, PastScheduleClampsToNow) {
  Simulator sim;
  sim.run_until(SimTime{100});
  bool fired = false;
  sim.schedule_at(SimTime{50}, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().us, 100);
}

// Regression: the pre-heap implementation moved the executing event out of
// priority_queue::top() via const_cast; these pin the behaviours that made
// that rewrite risky — cancellation seen only at pop time, and same-instant
// FIFO across a mix of live, cancelled, and nested schedules.
TEST(SimulatorTest, CancelledEventAmongSameInstantPeersIsSkipped) {
  Simulator sim;
  std::vector<int> order;
  auto h0 = sim.schedule_at(SimTime{100}, [&] { order.push_back(0); });
  sim.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  auto h2 = sim.schedule_at(SimTime{100}, [&] { order.push_back(2); });
  sim.schedule_at(SimTime{100}, [&] { order.push_back(3); });
  h0.cancel();
  h2.cancel();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(sim.events_executed(), 2u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelFromInsideSameInstantEvent) {
  Simulator sim;
  std::vector<int> order;
  EventHandle later;
  sim.schedule_at(SimTime{100}, [&] {
    order.push_back(0);
    later.cancel();  // cancels a peer already in the heap for this instant
  });
  later = sim.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  sim.schedule_at(SimTime{100}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(SimulatorTest, SameInstantFifoWithNestedSchedules) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{100}, [&] {
    order.push_back(0);
    // Scheduled during execution at the same instant: runs after every
    // event that was already queued for t=100.
    sim.schedule_at(SimTime{100}, [&] { order.push_back(3); });
  });
  sim.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  sim.schedule_at(SimTime{100}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, FifoSurvivesInterleavedCancellations) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  handles.reserve(50);
  for (int i = 0; i < 50; ++i) {
    handles.push_back(
        sim.schedule_at(SimTime{100}, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 50; i += 3) handles[static_cast<std::size_t>(i)].cancel();
  sim.run();
  std::vector<int> expected;
  for (int i = 0; i < 50; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(SimulatorTest, MoveOnlyCaptureInEvent) {
  Simulator sim;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  sim.schedule_at(SimTime{10},
                  [&seen, p = std::move(payload)] { seen = *p; });
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(PeriodicTimerTest, FiresEveryPeriod) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, SimDuration{100}, [&] { ++fires; });
  timer.start();
  sim.run_until(SimTime{1000});
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTimerTest, StopHalts) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, SimDuration{100}, [&] { ++fires; });
  timer.start();
  sim.run_until(SimTime{350});
  timer.stop();
  EXPECT_FALSE(timer.running());
  sim.run_until(SimTime{1000});
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimerTest, RestartResetsPhase) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, SimDuration{100}, [&] { ++fires; });
  timer.start();
  sim.run_until(SimTime{50});
  timer.start();  // restart at t=50; next fire at 150
  sim.run_until(SimTime{149});
  EXPECT_EQ(fires, 0);
  sim.run_until(SimTime{150});
  EXPECT_EQ(fires, 1);
}

TEST(PeriodicTimerTest, SetPeriodAppliesOnRestart) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, SimDuration{100}, [&] { ++fires; });
  timer.start();
  sim.run_until(SimTime{200});
  EXPECT_EQ(fires, 2);
  timer.set_period(SimDuration{400});
  EXPECT_EQ(timer.period().us, 400);
  timer.start();
  sim.run_until(SimTime{500});  // next fire at 600
  EXPECT_EQ(fires, 2);
  sim.run_until(SimTime{600});
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimerTest, DestructorCancels) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTimer timer(sim, SimDuration{10}, [&] { ++fires; });
    timer.start();
  }
  sim.run_until(SimTime{100});
  EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace digs
