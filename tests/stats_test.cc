// Unit tests for flow statistics: PDR windows, latency, duplicate
// suppression, drops, and repair-time (outage) extraction.
#include <gtest/gtest.h>

#include "stats/flow_stats.h"

namespace digs {
namespace {

constexpr FlowId kFlow{1};

TEST(FlowStatsTest, RegisterOnce) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  stats.register_flow(kFlow, NodeId{5});
  EXPECT_EQ(stats.flows().size(), 1u);
}

TEST(FlowStatsTest, PdrCountsDelivered) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    stats.on_generated(kFlow, seq, SimTime{static_cast<std::int64_t>(seq)});
    if (seq % 2 == 0) {
      stats.on_delivered(kFlow, seq,
                         SimTime{static_cast<std::int64_t>(seq) + 100});
    }
  }
  EXPECT_DOUBLE_EQ(stats.pdr(kFlow), 0.5);
  EXPECT_DOUBLE_EQ(stats.overall_pdr(), 0.5);
  EXPECT_EQ(stats.total_generated(), 10u);
  EXPECT_EQ(stats.total_delivered(), 5u);
}

TEST(FlowStatsTest, DuplicateDeliveryIgnored) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  stats.on_generated(kFlow, 0, SimTime{0});
  stats.on_delivered(kFlow, 0, SimTime{100});
  stats.on_delivered(kFlow, 0, SimTime{200});  // duplicate via backup path
  EXPECT_EQ(stats.total_delivered(), 1u);
  const auto latencies = stats.latencies_ms();
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(latencies[0], 0.1);  // first arrival counts
}

TEST(FlowStatsTest, DropAfterDeliveryIgnored) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  stats.on_generated(kFlow, 0, SimTime{0});
  stats.on_delivered(kFlow, 0, SimTime{50});
  stats.on_dropped(kFlow, 0, SimTime{60});  // the backup copy died; fine
  EXPECT_EQ(stats.total_dropped(), 0u);
  EXPECT_DOUBLE_EQ(stats.pdr(kFlow), 1.0);
}

TEST(FlowStatsTest, WindowedPdr) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  // 5 packets before t=1000 (all delivered), 5 after (none delivered).
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    const SimTime t{seq < 5 ? 100 + seq : 2000 + seq};
    stats.on_generated(kFlow, seq, t);
    if (seq < 5) stats.on_delivered(kFlow, seq, t + SimDuration{10});
  }
  EXPECT_DOUBLE_EQ(stats.pdr(kFlow, SimTime{0}, SimTime{1000}), 1.0);
  EXPECT_DOUBLE_EQ(stats.pdr(kFlow, SimTime{1000}, SimTime{10000}), 0.0);
}

TEST(FlowStatsTest, LatenciesInWindow) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  stats.on_generated(kFlow, 0, SimTime{0});
  stats.on_delivered(kFlow, 0, SimTime{500'000});  // 500 ms
  stats.on_generated(kFlow, 1, SimTime{1'000'000});
  stats.on_delivered(kFlow, 1, SimTime{1'250'000});  // 250 ms
  const auto all = stats.latencies_ms();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0], 500.0);
  EXPECT_DOUBLE_EQ(all[1], 250.0);
  const auto windowed = stats.latencies_ms(SimTime{900'000});
  ASSERT_EQ(windowed.size(), 1u);
  EXPECT_DOUBLE_EQ(windowed[0], 250.0);
}

TEST(FlowStatsTest, WasDelivered) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  stats.on_generated(kFlow, 0, SimTime{0});
  stats.on_generated(kFlow, 1, SimTime{10});
  stats.on_delivered(kFlow, 1, SimTime{20});
  EXPECT_FALSE(stats.was_delivered(kFlow, 0));
  EXPECT_TRUE(stats.was_delivered(kFlow, 1));
  EXPECT_FALSE(stats.was_delivered(FlowId{9}, 0));
}

TEST(FlowStatsTest, OutageAfterEvent) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  // Packets every 1 s; seq 3,4,5 lost; seq 6 delivered at t=6.2s.
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    const SimTime t{static_cast<std::int64_t>(seq) * 1'000'000};
    stats.on_generated(kFlow, seq, t);
    if (seq < 3 || seq > 5) {
      stats.on_delivered(kFlow, seq, t + SimDuration{200'000});
    }
  }
  const auto outage = stats.outage_after(kFlow, SimTime{0});
  ASSERT_TRUE(outage.has_value());
  // From generation of seq 3 (t=3s) to delivery of seq 6 (t=6.2s).
  EXPECT_NEAR(outage->seconds(), 3.2, 1e-9);
}

TEST(FlowStatsTest, NoOutageWhenAllDelivered) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    const SimTime t{static_cast<std::int64_t>(seq) * 1'000'000};
    stats.on_generated(kFlow, seq, t);
    stats.on_delivered(kFlow, seq, t + SimDuration{100});
  }
  EXPECT_FALSE(stats.outage_after(kFlow, SimTime{0}).has_value());
}

TEST(FlowStatsTest, OutageOnlyAfterEvent) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  // Loss at t=1s (before event), all delivered after.
  for (std::uint32_t seq = 0; seq < 6; ++seq) {
    const SimTime t{static_cast<std::int64_t>(seq) * 1'000'000};
    stats.on_generated(kFlow, seq, t);
    if (seq != 1) stats.on_delivered(kFlow, seq, t + SimDuration{100});
  }
  EXPECT_FALSE(stats.outage_after(kFlow, SimTime{3'000'000}).has_value());
}

TEST(FlowStatsTest, UnrecoveredOutageCountsToEnd) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  for (std::uint32_t seq = 0; seq < 6; ++seq) {
    const SimTime t{static_cast<std::int64_t>(seq) * 1'000'000};
    stats.on_generated(kFlow, seq, t);
    if (seq < 2) stats.on_delivered(kFlow, seq, t + SimDuration{100});
  }
  const auto outage = stats.outage_after(kFlow, SimTime{0});
  ASSERT_TRUE(outage.has_value());
  // From t=2s (first loss) to t=5s (last generation).
  EXPECT_NEAR(outage->seconds(), 3.0, 1e-9);
}

TEST(FlowStatsTest, LongestOutageWins) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  // Two outages: seq 2 (short) and seq 5-7 (long).
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    const SimTime t{static_cast<std::int64_t>(seq) * 1'000'000};
    stats.on_generated(kFlow, seq, t);
    const bool lost = (seq == 2) || (seq >= 5 && seq <= 7);
    if (!lost) stats.on_delivered(kFlow, seq, t + SimDuration{100'000});
  }
  const auto outage = stats.outage_after(kFlow, SimTime{0});
  ASSERT_TRUE(outage.has_value());
  // 5s -> delivery of seq 8 at 8.1s.
  EXPECT_NEAR(outage->seconds(), 3.1, 1e-9);
}

TEST(FlowStatsTest, SparseSequenceNumbersStillFound) {
  // Sequence numbers need not be dense (a source may skip while dead);
  // the record lookup must still match them.
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  stats.on_generated(kFlow, 10, SimTime{0});
  stats.on_generated(kFlow, 20, SimTime{10});
  stats.on_delivered(kFlow, 20, SimTime{30});
  EXPECT_FALSE(stats.was_delivered(kFlow, 10));
  EXPECT_TRUE(stats.was_delivered(kFlow, 20));
  EXPECT_DOUBLE_EQ(stats.pdr(kFlow), 0.5);
}

TEST(FlowStatsTest, EmptyPdrIsPerfect) {
  FlowStatsCollector stats;
  stats.register_flow(kFlow, NodeId{5});
  EXPECT_DOUBLE_EQ(stats.pdr(kFlow), 1.0);
  EXPECT_DOUBLE_EQ(stats.overall_pdr(), 1.0);
}

TEST(FlowStatsTest, UnknownFlowSafe) {
  FlowStatsCollector stats;
  stats.on_generated(FlowId{9}, 0, SimTime{0});
  stats.on_delivered(FlowId{9}, 0, SimTime{0});
  stats.on_dropped(FlowId{9}, 0, SimTime{0});
  EXPECT_DOUBLE_EQ(stats.pdr(FlowId{9}), 0.0);
  EXPECT_EQ(stats.flow(FlowId{9}), nullptr);
}

}  // namespace
}  // namespace digs
