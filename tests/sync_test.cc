// Clock-drift subsystem tests: oscillator determinism and bounds, the
// guard-time miss model in both reception paths, TSCH keep-alive polling and
// its escalation to desync, clock-jump fault injection and recovery, the
// time-source tracking rules, the sync-drift invariant, and the pin that
// keeps ppm = 0 (with the drift code path ACTIVE via a 0 us jump)
// bit-identical to a fully disabled run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/oscillator.h"
#include "common/rng.h"
#include "core/fault_script.h"
#include "core/invariant_monitor.h"
#include "core/network.h"
#include "mac/tsch_mac.h"
#include "net/frame.h"
#include "phy/medium.h"
#include "testbed/experiment.h"
#include "testbed/layouts.h"

namespace digs {
namespace {

// --- oscillator ---

TEST(OscillatorTest, DisabledReportsZeroDrift) {
  Oscillator osc;
  EXPECT_FALSE(osc.enabled());
  EXPECT_EQ(osc.elapsed_drift_us(SimTime{0} + seconds(std::int64_t{100})),
            0.0);
  OscillatorConfig config;  // defaults: ppm = 0, walk_ppm = 0
  Oscillator from_config(config, Rng(1));
  EXPECT_FALSE(from_config.enabled());
  EXPECT_EQ(
      from_config.elapsed_drift_us(SimTime{0} + seconds(std::int64_t{100})),
      0.0);
}

TEST(OscillatorTest, DeterministicPerSeedAndConfig) {
  OscillatorConfig config;
  config.ppm = 40.0;
  config.walk_ppm = 5.0;
  Oscillator a(config, Rng(7));
  Oscillator b(config, Rng(7));
  Oscillator c(config, Rng(8));
  bool seed_differs = false;
  for (std::int64_t s = 1; s <= 200; s += 7) {
    const SimTime t = SimTime{0} + seconds(s);
    EXPECT_EQ(a.elapsed_drift_us(t), b.elapsed_drift_us(t)) << "t=" << s;
    if (a.elapsed_drift_us(t) != c.elapsed_drift_us(t)) seed_differs = true;
  }
  EXPECT_TRUE(seed_differs);
}

TEST(OscillatorTest, QueryOrderDoesNotChangeValues) {
  // The polled loop queries every slot; the wake-heap engine queries only
  // executed slots, in a different order. Closed-form drift means the
  // answer is a pure function of t, whatever was asked before.
  OscillatorConfig config;
  config.ppm = 20.0;
  config.walk_ppm = 10.0;
  Oscillator sequential(config, Rng(99));
  Oscillator scattered(config, Rng(99));

  std::vector<SimTime> times;
  for (std::int64_t s = 0; s <= 300; s += 3) {
    times.push_back(SimTime{0} + seconds(s) + microseconds(s * 137));
  }
  // Scattered: far-future first, then a shuffled-ish stride backwards.
  (void)scattered.elapsed_drift_us(times.back());
  for (std::size_t i = times.size(); i-- > 0;) {
    (void)scattered.elapsed_drift_us(times[i]);
  }
  for (const SimTime t : times) {
    EXPECT_EQ(sequential.elapsed_drift_us(t), scattered.elapsed_drift_us(t))
        << "t=" << t.us;
  }
}

TEST(OscillatorTest, RateAndDriftStayWithinConfiguredBounds) {
  OscillatorConfig config;
  config.ppm = 40.0;
  config.walk_ppm = 5.0;
  config.walk_period = seconds(std::int64_t{10});
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Oscillator osc(config, Rng(seed));
    EXPECT_EQ(osc.max_rate_ppm(), 45.0);
    double prev_drift = 0.0;
    for (std::int64_t s = 10; s <= 2000; s += 10) {
      const SimTime t = SimTime{0} + seconds(s);
      EXPECT_LE(std::fabs(osc.rate_ppm_at(t)), config.max_rate_ppm());
      // Accumulated drift can never outrun the worst-case rate.
      const double drift = osc.elapsed_drift_us(t);
      EXPECT_LE(std::fabs(drift),
                config.max_rate_ppm() * 1e-6 * static_cast<double>(t.us) +
                    1e-9);
      EXPECT_LE(std::fabs(drift - prev_drift),
                config.max_rate_ppm() * 1e-6 * 10e6 + 1e-9);
      prev_drift = drift;
    }
  }
}

// --- guard-time miss model (reference reception path) ---

TEST(GuardMissTest, OffsetBeyondGuardKillsReceptionKeepsRss) {
  MediumConfig config;
  config.propagation.path_loss_exponent = 3.8;
  const std::vector<Position> positions = {{0.0, 0.0, 0.0}, {8.0, 0.0, 0.0}};
  Medium medium(config, positions, 0x5EED);

  TransmissionAttempt attempt;
  attempt.sender = NodeId{0};
  attempt.channel = 11;
  attempt.frame_bytes = FrameSizes::kData;
  const std::span<const TransmissionAttempt> alone(&attempt, 1);
  const SimTime slot_start = SimTime{0} + kSlotDuration;

  const auto baseline =
      medium.check_reception(attempt, NodeId{1}, 1, slot_start, alone);
  ASSERT_GT(baseline.probability, 0.9);  // 8 m apart: a clean link
  EXPECT_FALSE(baseline.guard_missed);

  // Relative offset within the guard: identical to the baseline.
  attempt.clock_offset_us = 3000.0;
  const auto within = medium.check_reception(attempt, NodeId{1}, 1,
                                             slot_start, alone,
                                             /*rx_clock_offset_us=*/1500.0,
                                             /*guard_us=*/2200.0);
  EXPECT_EQ(within.probability, baseline.probability);
  EXPECT_EQ(within.rss_dbm, baseline.rss_dbm);
  EXPECT_FALSE(within.guard_missed);

  // Beyond the guard: the frame is not decodable, but it still radiated —
  // the RSS is reported unchanged (it interferes with co-channel slots).
  const auto missed = medium.check_reception(attempt, NodeId{1}, 1,
                                             slot_start, alone,
                                             /*rx_clock_offset_us=*/0.0,
                                             /*guard_us=*/2200.0);
  EXPECT_EQ(missed.probability, 0.0);
  EXPECT_TRUE(missed.guard_missed);
  EXPECT_EQ(missed.rss_dbm, baseline.rss_dbm);

  // The check is on RELATIVE offset: both clocks shifted equally is fine.
  const auto common_mode = medium.check_reception(attempt, NodeId{1}, 1,
                                                  slot_start, alone,
                                                  /*rx_clock_offset_us=*/3000.0,
                                                  /*guard_us=*/2200.0);
  EXPECT_EQ(common_mode.probability, baseline.probability);
  EXPECT_FALSE(common_mode.guard_missed);
}

// --- MAC clock corrections and keep-alive policy ---

struct SyncMacHarness {
  MacConfig config;
  int synced_events = 0;
  int desynced_events = 0;
  std::unique_ptr<TschMac> mac;

  explicit SyncMacHarness(NodeId id, MacConfig cfg, bool is_ap = false) {
    config = cfg;
    TschMac::Callbacks callbacks;
    callbacks.on_synced = [this](SimTime) { ++synced_events; };
    callbacks.on_desynced = [this](SimTime) { ++desynced_events; };
    callbacks.rank_provider = [] { return std::uint16_t{3}; };
    mac = std::make_unique<TschMac>(id, is_ap, config, Rng(42), callbacks);
  }
};

Frame eb_from(NodeId src, std::uint64_t asn = 0) {
  EbPayload payload;
  payload.asn = asn;
  payload.rank = 1;
  return make_frame(FrameType::kEnhancedBeacon, src, kNoNode, payload);
}

MacConfig drift_config(double ppm) {
  MacConfig config;
  config.oscillator.ppm = ppm;
  return config;
}

TEST(MacClockTest, EbFromTimeSourceAdoptsSenderOffset) {
  SyncMacHarness harness(NodeId{5}, drift_config(40.0));
  TschMac& mac = *harness.mac;
  EXPECT_TRUE(mac.clock_active());
  mac.on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0}, 0.0);
  mac.set_time_source(NodeId{0});
  ASSERT_TRUE(mac.synced());

  const SimTime later = SimTime{0} + seconds(std::int64_t{20});
  mac.on_receive(eb_from(NodeId{0}, 2000), -70.0, 2000, later, 123.5);
  EXPECT_EQ(mac.clock_offset_us(later), 123.5);
  EXPECT_GE(mac.clock_corrections(), 2u);  // first sync + this EB

  // An EB from a non-source neighbor refreshes sync but must NOT correct.
  const SimTime after = later + seconds(std::int64_t{1});
  const double before = mac.clock_offset_us(after);
  mac.on_receive(eb_from(NodeId{9}, 2100), -70.0, 2100, after, 999.0);
  EXPECT_EQ(mac.clock_offset_us(after), before);
}

TEST(MacClockTest, InjectedJumpShiftsOffsetAndActivatesClock) {
  SyncMacHarness harness(NodeId{5}, MacConfig{});  // ppm = 0
  TschMac& mac = *harness.mac;
  EXPECT_FALSE(mac.clock_active());
  const SimTime t = SimTime{0} + seconds(std::int64_t{3});
  mac.inject_clock_offset(5000.0, t);
  EXPECT_TRUE(mac.clock_active());
  EXPECT_EQ(mac.clock_offset_us(t), 5000.0);
  mac.inject_clock_offset(-2000.0, t);  // jumps accumulate
  EXPECT_EQ(mac.clock_offset_us(t), 3000.0);

  // Access points ARE the reference: jumps must not touch them.
  SyncMacHarness ap(NodeId{0}, MacConfig{}, /*is_ap=*/true);
  ap.mac->inject_clock_offset(5000.0, t);
  EXPECT_FALSE(ap.mac->clock_active());
  EXPECT_EQ(ap.mac->clock_offset_us(t), 0.0);
}

TEST(MacKeepAliveTest, PollsTimeSourceBeforeDriftBudgetExpires) {
  SyncMacHarness harness(NodeId{5}, drift_config(40.0));
  TschMac& mac = *harness.mac;
  mac.on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0}, 0.0);
  mac.set_time_source(NodeId{0});
  ASSERT_TRUE(mac.synced());

  // Worst-case relative rate 2 * 40 ppm -> budget 2200 / 80e-6 = 27.5 s;
  // the poll goes out at keepalive_fraction (0.5) of that: 13.75 s.
  const SimTime due = mac.drift_deadline();
  EXPECT_EQ(due.us, 13'750'000);

  mac.end_slot(1000, SimTime{0} + seconds(std::int64_t{10}));
  EXPECT_EQ(mac.keepalives_sent(), 0u);
  EXPECT_EQ(mac.routing_queue_size(), 0u);

  mac.end_slot(1400, SimTime{0} + seconds(std::int64_t{14}));
  EXPECT_EQ(mac.keepalives_sent(), 1u);
  EXPECT_EQ(mac.routing_queue_size(), 1u);

  // While the poll is pending no duplicate is queued; the deadline the
  // engine must wake for is now the hard resync deadline (27.5 s).
  mac.end_slot(1500, SimTime{0} + seconds(std::int64_t{15}));
  EXPECT_EQ(mac.keepalives_sent(), 1u);
  EXPECT_EQ(mac.drift_deadline().us, 27'500'000);

  // A correction re-projects both deadlines from its instant. The poll is
  // still queued (it will harvest its own ACK correction when it goes
  // out), so the engine-visible deadline stays the hard resync one:
  // 16 s + 27.5 s.
  mac.on_receive(eb_from(NodeId{0}, 1600), -70.0, 1600,
                 SimTime{0} + seconds(std::int64_t{16}), 0.0);
  EXPECT_EQ(mac.drift_deadline().us, 16'000'000 + 27'500'000);
}

TEST(MacKeepAliveTest, RepeatedPollFailureEscalatesToDesync) {
  MacConfig config = drift_config(40.0);
  config.sync_timeout = seconds(std::int64_t{60});  // KA must fire first
  SyncMacHarness harness(NodeId{5}, config);
  TschMac& mac = *harness.mac;
  mac.on_receive(eb_from(NodeId{0}), -70.0, 0, SimTime{0}, 0.0);
  mac.set_time_source(NodeId{0});

  // One shared routing cell so plan_slot can put the keep-alive on the air.
  Slotframe routing;
  routing.traffic = TrafficClass::kRouting;
  routing.length = 5;
  Cell shared;
  shared.slot_offset = 0;
  shared.option = CellOption::kTx;
  shared.traffic = TrafficClass::kRouting;
  routing.cells.push_back(shared);
  mac.schedule().install(routing);

  // Drive slots with every keep-alive transmission failing: the poll is
  // retried keepalive_transmissions times, re-queued once after
  // keepalive_retry, and the second exhausted poll desynchronizes.
  std::uint64_t ka_tx = 0;
  for (std::uint64_t asn = 0; asn < 4000 && mac.synced(); ++asn) {
    const SimTime now = SimTime{0} + static_cast<std::int64_t>(asn) *
                                         kSlotDuration;
    const SlotPlan plan = mac.plan_slot(asn, now);
    if (plan.kind == SlotPlan::Kind::kTx &&
        plan.frame.type == FrameType::kKeepAlive) {
      ++ka_tx;
      mac.on_tx_outcome(false, asn, now);
    }
    mac.end_slot(asn, now);
  }
  EXPECT_FALSE(mac.synced());
  EXPECT_EQ(harness.desynced_events, 1);
  EXPECT_EQ(mac.keepalives_sent(), 2u);  // two polls, each exhausted
  EXPECT_EQ(ka_tx, 2u * 3u);             // keepalive_transmissions each
  EXPECT_EQ(mac.desync_events(), 1u);
  // Desync wiped the keep-alive state: deadlines are parked at "never".
  EXPECT_EQ(mac.drift_deadline(), TschMac::kNeverDeadline);
}

// --- network-level: zero-jump pin, fault recovery, time-source tracking ---

ExperimentConfig small_experiment(ProtocolSuite suite, std::uint64_t seed) {
  ExperimentConfig config;
  config.suite = suite;
  config.seed = seed;
  config.num_flows = 4;
  config.warmup = seconds(std::int64_t{60});
  config.duration = seconds(std::int64_t{60});
  config.stat_drain = seconds(std::int64_t{10});
  config.num_jammers = 0;
  return config;
}

struct NetSnapshot {
  ExperimentResult result;
  std::uint64_t final_asn{0};
  std::vector<double> energy_mj;
};

NetSnapshot run_experiment(const ExperimentConfig& config) {
  ExperimentRunner runner(half_testbed_a(), config);
  NetSnapshot snap;
  snap.result = runner.run();
  Network& net = runner.network();
  snap.final_asn = net.current_asn();
  for (std::size_t i = 0; i < net.size(); ++i) {
    snap.energy_mj.push_back(
        net.node(NodeId{static_cast<std::uint16_t>(i)}).meter().energy_mj());
  }
  return snap;
}

// THE zero-cost pin: a 0 us clock jump turns the whole drift code path ON
// (offset queries, guard checks, correction bookkeeping) with every offset
// exactly 0.0 — and the run must be bit-identical to one where the drift
// subsystem never existed. This holds only if the drift logic is free of
// side effects at zero offset (no extra RNG draws, no energy changes, no
// behavioral branches), which is exactly the ppm = 0 contract.
TEST(SyncNetworkTest, ZeroJumpIsBitIdenticalToDisabledDrift) {
  const ExperimentConfig base = small_experiment(ProtocolSuite::kDigs, 11);

  ExperimentConfig jumped = base;
  jumped.faults.clock_jump(seconds(std::int64_t{1}), NodeId{5}, 0.0);

  const NetSnapshot off = run_experiment(base);
  const NetSnapshot on = run_experiment(jumped);

  EXPECT_EQ(on.final_asn, off.final_asn);
  EXPECT_EQ(on.result.generated, off.result.generated);
  EXPECT_EQ(on.result.delivered, off.result.delivered);
  EXPECT_EQ(on.result.overall_pdr, off.result.overall_pdr);
  EXPECT_EQ(on.result.flow_pdrs, off.result.flow_pdrs);
  EXPECT_EQ(on.result.latencies_ms, off.result.latencies_ms);
  EXPECT_EQ(on.result.duty_cycle, off.result.duty_cycle);
  EXPECT_EQ(on.energy_mj, off.energy_mj);
  EXPECT_EQ(on.result.guard_misses, 0u);
  EXPECT_EQ(off.result.guard_misses, 0u);
  // The drift path really was active in the jumped run: the jumped node
  // kept re-anchoring its (zero) clock on every time-source correction.
  EXPECT_GT(on.result.clock_corrections, 0u);
  EXPECT_EQ(off.result.clock_corrections, 0u);
}

TEST(SyncNetworkTest, LargeClockJumpDesyncsThenRecovers) {
  ExperimentConfig config = small_experiment(ProtocolSuite::kDigs, 3);
  config.duration = seconds(std::int64_t{120});
  // +5000 us: past the 2200 us guard, so every dedicated-cell reception at
  // or from the node fails until it desyncs, rescans (scan slots listen the
  // whole slot and are guard-exempt), and re-anchors on a fresh EB.
  config.faults.clock_jump(seconds(std::int64_t{5}), NodeId{7}, 5000.0);

  ExperimentRunner runner(half_testbed_a(), config);
  const ExperimentResult result = runner.run();

  EXPECT_GT(result.guard_misses, 0u);
  EXPECT_GE(result.desync_events, 1u);
  // Recovery: the node is synchronized again at the end of the run and its
  // clock was re-anchored (corrections from the new time source).
  const TschMac& mac = runner.network().node(NodeId{7}).mac();
  EXPECT_TRUE(mac.synced());
  EXPECT_TRUE(mac.clock_active());
  EXPECT_GT(mac.clock_corrections(), 0u);
  EXPECT_GT(result.overall_pdr, 0.5);
}

TEST(SyncNetworkTest, DriftAt40PpmIsAbsorbedByCorrections) {
  ExperimentConfig config = small_experiment(ProtocolSuite::kDigs, 2);
  config.clock_ppm = 40.0;
  config.clock_walk_ppm = 5.0;
  const NetSnapshot snap = run_experiment(config);
  // EB/ACK corrections arrive far inside the 27.5 s worst-case budget, so
  // 40 ppm must not collapse the network: packets still flow and no desync
  // storm develops.
  EXPECT_GT(snap.result.clock_corrections, 100u);
  EXPECT_GT(snap.result.overall_pdr, 0.6);
  EXPECT_LT(snap.result.desync_events, 20u);
}

TEST(SyncNetworkTest, TimeSourceFollowsBestParentAcrossRevival) {
  ExperimentConfig config = small_experiment(ProtocolSuite::kDigs, 5);
  config.duration = seconds(std::int64_t{120});
  // Crash a relay mid-run and revive it: the revived node must re-acquire a
  // time source via its rescan and then re-pin it to its new best parent.
  config.failures.push_back(
      FailureEvent{seconds(std::int64_t{80}), NodeId{7}, false});
  config.failures.push_back(
      FailureEvent{seconds(std::int64_t{110}), NodeId{7}, true});

  ExperimentRunner runner(half_testbed_a(), config);
  (void)runner.run();
  Network& net = runner.network();

  const TschMac& revived = net.node(NodeId{7}).mac();
  ASSERT_TRUE(revived.synced());
  ASSERT_TRUE(revived.time_source().valid());

  for (std::size_t i = 0; i < net.size(); ++i) {
    const Node& node = net.node(NodeId{static_cast<std::uint16_t>(i)});
    if (node.is_access_point() || !node.alive() || !node.mac().synced()) {
      continue;
    }
    const NodeId source = node.mac().time_source();
    ASSERT_TRUE(source.valid()) << "node " << i;
    EXPECT_NE(source, node.id()) << "node " << i;
    // The source follows routing: once a best parent exists, they agree.
    if (node.routing().best_parent().valid()) {
      EXPECT_EQ(source, node.routing().best_parent()) << "node " << i;
    }
    // A time source is someone whose clock the node can trust: never an
    // unsynced neighbor (EB senders are synced by construction, and the
    // best parent of a joined node is routed, hence synced).
    const Node& src = net.node(source);
    EXPECT_TRUE(src.is_access_point() || src.mac().synced()) << "node " << i;
  }
}

TEST(SyncNetworkTest, MonitorFlagsPersistentDriftWithTxCells) {
  NetworkConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 21;
  config.node = ExperimentRunner::default_node_config();
  // Long sync timeout: the node must NOT heal by desyncing before the
  // monitor's 60 s transient grace elapses — the invariant is about
  // holding TX cells while drifted, and we pin the node in that state.
  config.node.mac.sync_timeout = seconds(std::int64_t{600});
  config.medium.propagation.path_loss_exponent = 3.8;
  config.monitor_invariants = true;

  const std::vector<Position> positions = {
      {12.0, 10.0, 0.0}, {24.0, 10.0, 0.0},  // APs
      {10.0, 5.0, 0.0},  {10.0, 15.0, 0.0}, {17.0, 8.0, 0.0},
      {17.0, 14.0, 0.0}, {24.0, 6.0, 0.0},  {30.0, 10.0, 0.0},
      {14.0, 11.0, 0.0}, {27.0, 12.0, 0.0},
  };
  Network net(config, positions);
  net.start();
  net.run_until(SimTime{0} + seconds(std::int64_t{120}));
  ASSERT_TRUE(net.node(NodeId{7}).mac().synced());
  ASSERT_EQ(net.invariant_monitor()->count(InvariantKind::kSyncDrift), 0u);

  net.inject_clock_jump(NodeId{7}, 5000.0);
  net.run_for(seconds(std::int64_t{80}));

  EXPECT_GE(net.invariant_monitor()->count(InvariantKind::kSyncDrift), 1u);
  for (const InvariantViolation& v : net.invariant_monitor()->violations()) {
    if (v.kind == InvariantKind::kSyncDrift) {
      EXPECT_EQ(v.node, NodeId{7});
    }
  }
}

}  // namespace
}  // namespace digs
