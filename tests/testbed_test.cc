// Tests for the testbed layouts, the topology snapshot used by the
// centralized baseline, and the experiment harness plumbing.
#include <gtest/gtest.h>

#include <set>

#include "manager/graph_router.h"
#include "manager/manager_model.h"
#include "testbed/experiment.h"
#include "testbed/layouts.h"

namespace digs {
namespace {

TEST(LayoutTest, NodeCountsMatchPaper) {
  EXPECT_EQ(testbed_a().num_nodes(), 50);
  EXPECT_EQ(testbed_a().num_field_devices(), 48);
  EXPECT_EQ(half_testbed_a().num_nodes(), 20);
  EXPECT_EQ(testbed_b().num_nodes(), 44);
  EXPECT_EQ(half_testbed_b().num_nodes(), 19);
  EXPECT_EQ(cooja_150().num_nodes(), 152);
}

TEST(LayoutTest, DeterministicGivenSeed) {
  const TestbedLayout a1 = testbed_a(7);
  const TestbedLayout a2 = testbed_a(7);
  ASSERT_EQ(a1.positions.size(), a2.positions.size());
  for (std::size_t i = 0; i < a1.positions.size(); ++i) {
    EXPECT_EQ(a1.positions[i], a2.positions[i]);
  }
  const TestbedLayout b = testbed_a(8);
  EXPECT_NE(a1.positions[5], b.positions[5]);
}

TEST(LayoutTest, TestbedAWithinFloorBounds) {
  const TestbedLayout layout = testbed_a();
  for (const Position& p : layout.positions) {
    EXPECT_GE(p.x, -3.0);
    EXPECT_LE(p.x, 63.0);
    EXPECT_GE(p.y, -3.0);
    EXPECT_LE(p.y, 28.0);
    EXPECT_DOUBLE_EQ(p.z, 0.0);
  }
}

TEST(LayoutTest, TestbedBHasOneApPerFloor) {
  const TestbedLayout layout = testbed_b();
  EXPECT_DOUBLE_EQ(layout.positions[0].z, 0.0);
  EXPECT_DOUBLE_EQ(layout.positions[1].z, 4.0);
  int floor0 = 0;
  int floor1 = 0;
  for (const Position& p : layout.positions) {
    (p.z < 2.0 ? floor0 : floor1)++;
  }
  EXPECT_EQ(floor0, 22);
  EXPECT_EQ(floor1, 22);
}

TEST(LayoutTest, CoojaUsesOpenAreaExponent) {
  EXPECT_DOUBLE_EQ(cooja_150().path_loss_exponent, 3.0);
  EXPECT_DOUBLE_EQ(testbed_a().path_loss_exponent, 3.8);
}

TEST(LayoutTest, EnoughJammersForFigs4And5) {
  EXPECT_GE(testbed_a().jammer_positions.size(), 4u);
  EXPECT_GE(cooja_150().jammer_positions.size(), 5u);
}

// --- topology snapshot ---

TEST(TopologySnapshotTest, SymmetricAndConnected) {
  const TestbedLayout layout = testbed_a();
  const TopologySnapshot topo = make_topology_snapshot(layout);
  EXPECT_EQ(topo.num_nodes, 50);
  for (std::uint16_t a = 0; a < topo.num_nodes; ++a) {
    EXPECT_FALSE(topo.linked(a, a));
    for (std::uint16_t b = 0; b < topo.num_nodes; ++b) {
      EXPECT_DOUBLE_EQ(topo.etx[a][b], topo.etx[b][a]);
      if (topo.linked(a, b)) {
        EXPECT_GE(topo.etx[a][b], 1.0);
        EXPECT_LE(topo.etx[a][b], 3.0);  // the paper's seeding range
      }
    }
  }
  const auto routes = compute_graph_routes(topo);
  EXPECT_TRUE(routes.fully_connected());
  EXPECT_TRUE(routes_are_dag(topo, routes));
}

TEST(TopologySnapshotTest, AllTestbedsAreMultiHop) {
  for (const TestbedLayout& layout :
       {testbed_a(), testbed_b(), cooja_150()}) {
    const TopologySnapshot topo = make_topology_snapshot(layout);
    const auto routes = compute_graph_routes(topo);
    int max_depth = 0;
    for (const GraphRoute& route : routes.routes) {
      max_depth = std::max(max_depth, route.depth);
    }
    EXPECT_GE(max_depth, 2) << layout.name;
  }
}

TEST(TopologySnapshotTest, MostDevicesHaveBackupParents) {
  const TopologySnapshot topo = make_topology_snapshot(testbed_a());
  const auto routes = compute_graph_routes(topo);
  int with_backup = 0;
  for (std::uint16_t v = 2; v < topo.num_nodes; ++v) {
    if (routes.routes[v].second_best_parent.valid()) ++with_backup;
  }
  // WirelessHART requires two outgoing paths; the dense floor supports it
  // for the overwhelming majority.
  EXPECT_GE(with_backup, 44);
}

// --- experiment harness ---

TEST(ExperimentTest, FlowsGetDistinctSourcesAndStaggeredStarts) {
  ExperimentConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 5;
  config.num_flows = 8;
  config.warmup = seconds(static_cast<std::int64_t>(1));
  config.duration = seconds(static_cast<std::int64_t>(1));
  config.stat_drain = seconds(static_cast<std::int64_t>(0));
  ExperimentRunner runner(testbed_a(), config);
  runner.run();
  std::set<NodeId> sources;
  for (const FlowRecord& flow : runner.network().stats().flows()) {
    sources.insert(flow.source);
  }
  EXPECT_EQ(sources.size(), 8u);
}

TEST(ExperimentTest, JammersOnlyWhenRequested) {
  ExperimentConfig config;
  config.num_jammers = 0;
  config.warmup = seconds(static_cast<std::int64_t>(1));
  config.duration = seconds(static_cast<std::int64_t>(1));
  config.stat_drain = seconds(static_cast<std::int64_t>(0));
  ExperimentRunner no_jam(testbed_a(), config);
  EXPECT_EQ(no_jam.network().medium().num_jammers(), 0u);

  config.num_jammers = 3;
  ExperimentRunner jam(testbed_a(), config);
  EXPECT_EQ(jam.network().medium().num_jammers(), 3u);
}

TEST(ExperimentTest, PersistenceScalesWithSuite) {
  ExperimentConfig config;
  config.max_delivery_cycles = 8;
  config.warmup = seconds(static_cast<std::int64_t>(1));
  config.duration = seconds(static_cast<std::int64_t>(1));
  config.stat_drain = seconds(static_cast<std::int64_t>(0));

  config.suite = ProtocolSuite::kDigs;
  ExperimentRunner digs_runner(testbed_a(), config);
  EXPECT_EQ(digs_runner.network()
                .node(NodeId{2})
                .mac()
                .config()
                .max_data_transmissions,
            24);  // 3 attempts x 8 cycles

  config.suite = ProtocolSuite::kOrchestra;
  ExperimentRunner orch_runner(testbed_a(), config);
  EXPECT_EQ(orch_runner.network()
                .node(NodeId{2})
                .mac()
                .config()
                .max_data_transmissions,
            8);  // Contiki TSCH retry default
}

TEST(ExperimentTest, LayoutRadioRegimeApplied) {
  ExperimentConfig config;
  config.warmup = seconds(static_cast<std::int64_t>(1));
  config.duration = seconds(static_cast<std::int64_t>(1));
  config.stat_drain = seconds(static_cast<std::int64_t>(0));
  ExperimentRunner runner(cooja_150(), config);
  EXPECT_DOUBLE_EQ(runner.network()
                       .medium()
                       .propagation()
                       .config()
                       .path_loss_exponent,
                   3.0);
  EXPECT_DOUBLE_EQ(
      runner.network().node(NodeId{2}).mac().config().tx_power_dbm, 0.0);
}

// --- repair-window helpers (shared by run() and the fig04/fig05 benches) ---

TEST(RepairHelpersTest, RepairTimesMatchPerFlowOutages) {
  FlowStatsCollector stats;
  stats.register_flow(FlowId{0}, NodeId{5});
  stats.register_flow(FlowId{1}, NodeId{6});
  const auto at = [](std::int64_t s) { return SimTime{0} + seconds(s); };

  // Flow 0: delivery, then an 11 s outage (lost at 20, healed by the
  // packet delivered at 31).
  stats.on_generated(FlowId{0}, 1, at(10));
  stats.on_delivered(FlowId{0}, 1, at(11));
  stats.on_generated(FlowId{0}, 2, at(20));
  stats.on_dropped(FlowId{0}, 2, at(22), DropReason::kAttemptsExhausted);
  stats.on_generated(FlowId{0}, 3, at(30));
  stats.on_delivered(FlowId{0}, 3, at(31));
  // Flow 1: never lost a packet, so it has no repair time.
  stats.on_generated(FlowId{1}, 1, at(18));
  stats.on_delivered(FlowId{1}, 1, at(19));

  const auto repairs = repair_times_after(stats, at(15));
  ASSERT_EQ(repairs.size(), 1u);
  EXPECT_DOUBLE_EQ(repairs[0], 11.0);
  // Before the loss there is no outage to measure either.
  EXPECT_TRUE(repair_times_after(stats, at(32)).empty());
}

TEST(RepairHelpersTest, WindowPdrsCoverEveryFlowInOrder) {
  FlowStatsCollector stats;
  stats.register_flow(FlowId{0}, NodeId{5});
  stats.register_flow(FlowId{1}, NodeId{6});
  const auto at = [](std::int64_t s) { return SimTime{0} + seconds(s); };

  stats.on_generated(FlowId{0}, 1, at(20));
  stats.on_dropped(FlowId{0}, 1, at(21), DropReason::kAttemptsExhausted);
  stats.on_generated(FlowId{0}, 2, at(30));
  stats.on_delivered(FlowId{0}, 2, at(31));
  stats.on_generated(FlowId{0}, 3, at(40));  // outside the window
  stats.on_delivered(FlowId{0}, 3, at(41));
  stats.on_generated(FlowId{1}, 1, at(18));
  stats.on_delivered(FlowId{1}, 1, at(19));

  const auto pdrs = repair_window_pdrs(
      stats, at(15), seconds(static_cast<std::int64_t>(20)));
  ASSERT_EQ(pdrs.size(), 2u);
  EXPECT_DOUBLE_EQ(pdrs[0], 0.5);  // flow 0: one of two in [15, 35)
  EXPECT_DOUBLE_EQ(pdrs[1], 1.0);  // flow 1: delivered at 18
}

TEST(ManagerModelTest, FitsOurActualTestbedDepths) {
  // The Fig. 3 bench fits the reaction model on the paper's measured
  // totals with depths from our layouts; the fit must stay within 35% of
  // every anchor (it has 2 parameters for 4 points).
  std::vector<ManagerAnchor> anchors;
  const std::vector<std::pair<TestbedLayout, double>> cases{
      {half_testbed_a(), 203.0},
      {testbed_a(), 506.0},
      {half_testbed_b(), 191.0},
      {testbed_b(), 443.0},
  };
  for (const auto& [layout, measured] : cases) {
    const auto topo = make_topology_snapshot(layout);
    const auto routes = compute_graph_routes(topo);
    anchors.push_back(ManagerAnchor{layout.num_nodes(),
                                    total_depth(routes,
                                                layout.num_access_points),
                                    measured});
  }
  const auto model = ManagerReactionModel::fit(anchors);
  for (const ManagerAnchor& anchor : anchors) {
    const double predicted =
        model.predict(anchor.num_nodes, anchor.total_depth).total_s();
    EXPECT_NEAR(predicted, anchor.measured_total_s,
                0.35 * anchor.measured_total_s);
  }
}

}  // namespace
}  // namespace digs
