// Property tests for the parallel trial runner: run_trials() must return
// results in submission order that are BIT-IDENTICAL to running each trial
// sequentially, for any worker count — trials share no mutable state, so
// threading is purely a wall-clock optimization, never a trajectory change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "testbed/experiment.h"

namespace digs {
namespace {

std::vector<TrialSpec> small_trials() {
  std::vector<TrialSpec> trials;
  for (int run = 0; run < 6; ++run) {
    ExperimentConfig config;
    config.suite =
        run % 2 == 0 ? ProtocolSuite::kDigs : ProtocolSuite::kOrchestra;
    config.seed = 21'000 + run;
    config.num_flows = 4;
    config.warmup = seconds(static_cast<std::int64_t>(60));
    config.duration = seconds(static_cast<std::int64_t>(30));
    config.num_jammers = run % 3;
    trials.push_back(TrialSpec{testbed_a(), config});
  }
  return trials;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.overall_pdr, b.overall_pdr);
  EXPECT_EQ(a.flow_pdrs, b.flow_pdrs);
  EXPECT_EQ(a.latencies_ms, b.latencies_ms);
  EXPECT_EQ(a.energy_per_delivered_mj, b.energy_per_delivered_mj);
  EXPECT_EQ(a.duty_cycle, b.duty_cycle);
  EXPECT_EQ(a.duty_cycle_per_delivered, b.duty_cycle_per_delivered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.repair_times_s, b.repair_times_s);
  EXPECT_EQ(a.join_times_s, b.join_times_s);
  EXPECT_EQ(a.full_join_times_s, b.full_join_times_s);
}

TEST(TrialRunnerTest, ParallelMatchesSequentialBitIdentically) {
  const std::vector<TrialSpec> trials = small_trials();

  // Reference: each trial run inline, in order.
  std::vector<ExperimentResult> sequential;
  for (const TrialSpec& trial : trials) {
    ExperimentRunner runner(trial.layout, trial.config);
    sequential.push_back(runner.run());
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::vector<ExperimentResult> results =
        run_trials(trials, threads);
    ASSERT_EQ(results.size(), sequential.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE("trial " + std::to_string(i) + " threads " +
                   std::to_string(threads));
      expect_identical(results[i], sequential[i]);
    }
  }
}

TEST(TrialRunnerTest, ThreadCountComesFromEnvironment) {
  // DIGS_THREADS pins the worker count; unset falls back to the hardware.
  ::setenv("DIGS_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(trial_threads(), 3u);
  ::setenv("DIGS_THREADS", "1", 1);
  EXPECT_EQ(trial_threads(), 1u);
  ::setenv("DIGS_THREADS", "garbage", 1);
  EXPECT_GE(trial_threads(), 1u);  // unparsable -> hardware fallback
  ::unsetenv("DIGS_THREADS");
  EXPECT_GE(trial_threads(), 1u);
}

TEST(TrialRunnerTest, EmptyAndSingleTrialDegenerate) {
  EXPECT_TRUE(run_trials({}, 4).empty());
  const std::vector<TrialSpec> one{small_trials().front()};
  ExperimentRunner runner(one[0].layout, one[0].config);
  const ExperimentResult reference = runner.run();
  const auto results = run_trials(one, 8);
  ASSERT_EQ(results.size(), 1u);
  expect_identical(results[0], reference);
}

}  // namespace
}  // namespace digs
