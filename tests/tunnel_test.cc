// Tests for the multipath downlink tunnel subsystem:
//   - TunnelManager derivation over a fake parent DAG: node-disjointness,
//     loop-freedom under a cyclic DAG, graceful single-path degradation
//     when the second-best parent is missing (RPL-style) or coincides with
//     the primary exit, survival of a dead best parent, churn re-derivation
//     and repair timing,
//   - DuplicateFilter: either-order suppression of the replicated pair and
//     FIFO eviction under wraparound,
//   - tunnel_pair_conflict_free: clean pairs pass (also through a
//     SlotSwapper permutation), a crafted same-role collision is caught,
//     and a fully shared path is exempt (same transmitter, no collision),
//   - scheduler: role-keyed tunnel TX/RX cell ladders, off by default,
//   - end to end: replicated delivery with egress duplicate suppression,
//     the replication-off ablation, and zero tunnel invariant violations.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/invariant_monitor.h"
#include "core/network.h"
#include "net/duplicate_filter.h"
#include "routing/tunnel.h"
#include "sched/conflict_analysis.h"
#include "sched/digs_scheduler.h"
#include "testbed/experiment.h"

namespace digs {
namespace {

// --- TunnelManager over a fake DAG ---

// 2 APs (0, 1) + 8 field devices. Two parallel spines:
//   0 <- 2 <- 4 <- 6   (best-parent chain of 6)
//   1 <- 3 <- 5        (5 is 6's second-best parent)
// plus 8 under AP 0 as a spare used by the churn test.
struct FakeDag {
  static constexpr std::size_t kNodes = 10;
  static constexpr std::uint16_t kAps = 2;

  std::array<NodeId, kNodes> best;
  std::array<NodeId, kNodes> second;
  std::array<bool, kNodes> up;

  FakeDag() {
    best.fill(kNoNode);
    second.fill(kNoNode);
    up.fill(true);
    best[2] = NodeId{0};
    best[3] = NodeId{1};
    best[4] = NodeId{2};
    best[5] = NodeId{3};
    best[6] = NodeId{4};
    best[8] = NodeId{0};
    second[6] = NodeId{5};
  }

  [[nodiscard]] TunnelManager::Env env() {
    TunnelManager::Env e;
    e.best_parent = [this](NodeId n) {
      return n.value < kNodes ? best[n.value] : kNoNode;
    };
    e.second_best_parent = [this](NodeId n) {
      return n.value < kNodes ? second[n.value] : kNoNode;
    };
    e.alive = [this](NodeId n) { return n.value < kNodes && up[n.value]; };
    e.num_access_points = kAps;
    e.num_nodes = kNodes;
    return e;
  }
};

TEST(TunnelManagerTest, DerivesNodeDisjointPair) {
  FakeDag dag;
  TunnelManager mgr(dag.env());
  const TunnelPair pair = mgr.derive(NodeId{6});
  ASSERT_TRUE(pair.valid());
  ASSERT_TRUE(pair.replicated());
  EXPECT_TRUE(pair.disjoint);
  EXPECT_EQ(pair.primary.hops,
            (std::vector<NodeId>{NodeId{0}, NodeId{2}, NodeId{4}, NodeId{6}}));
  EXPECT_EQ(pair.backup.hops,
            (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{5}, NodeId{6}}));
  // Roles: the primary rides best-parent edges only; the backup's final hop
  // (5 -> 6) is the second-best-parent edge and must carry the backup role
  // so it lands on the three-quarter-shift ladder.
  EXPECT_EQ(pair.primary.backup_edge,
            (std::vector<std::uint8_t>{0, 0, 0}));
  EXPECT_EQ(pair.backup.backup_edge, (std::vector<std::uint8_t>{0, 0, 1}));
}

TEST(TunnelManagerTest, NoTunnelTowardsApsOrDeadDestinations) {
  FakeDag dag;
  TunnelManager mgr(dag.env());
  EXPECT_FALSE(mgr.derive(NodeId{0}).valid());  // AP
  EXPECT_FALSE(mgr.derive(kNoNode).valid());
  dag.up[6] = false;
  EXPECT_FALSE(mgr.derive(NodeId{6}).valid());
}

TEST(TunnelManagerTest, SinglePathWhenSecondBestMissing) {
  // RPL/Orchestra shape: no node keeps a second-best parent. The pair must
  // degrade to a counted single-path fallback, never assert or drop.
  FakeDag dag;
  dag.second[6] = kNoNode;
  TunnelManager mgr(dag.env());
  const TunnelPair& pair = mgr.refresh(NodeId{6}, SimTime{0});
  ASSERT_TRUE(pair.valid());
  EXPECT_FALSE(pair.replicated());
  EXPECT_FALSE(pair.disjoint);
  EXPECT_EQ(mgr.fallback_derivations(), 1u);
  mgr.refresh(NodeId{6}, SimTime{1000});
  EXPECT_EQ(mgr.fallback_derivations(), 2u);
}

TEST(TunnelManagerTest, SinglePathWhenSecondBestIsPrimaryExit) {
  // The disjoint exit edge is gone when the second-best parent IS the
  // primary's last relay: replicating through it would share the final hop.
  FakeDag dag;
  dag.second[6] = NodeId{4};
  TunnelManager mgr(dag.env());
  const TunnelPair pair = mgr.derive(NodeId{6});
  ASSERT_TRUE(pair.valid());
  EXPECT_FALSE(pair.replicated());
}

TEST(TunnelManagerTest, DeadBestParentDegradesPrimaryNotTunnel) {
  FakeDag dag;
  dag.up[4] = false;  // 6's best parent crashes
  TunnelManager mgr(dag.env());
  const TunnelPair pair = mgr.derive(NodeId{6});
  ASSERT_TRUE(pair.valid());
  // The primary now leaves through the second-best parent (5) — and that
  // consumes the only disjoint exit, so the pair is single-path.
  EXPECT_EQ(pair.primary.hops,
            (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{5}, NodeId{6}}));
  EXPECT_EQ(pair.primary.backup_edge.back(), 1);
  EXPECT_FALSE(pair.replicated());
}

TEST(TunnelManagerTest, CyclicDagYieldsInvalidPairNotAHang) {
  FakeDag dag;
  dag.best[6] = NodeId{4};
  dag.best[4] = NodeId{6};  // parent cycle
  dag.second[6] = kNoNode;
  dag.second[4] = kNoNode;
  TunnelManager mgr(dag.env());
  EXPECT_FALSE(mgr.derive(NodeId{6}).valid());
}

TEST(TunnelManagerTest, ParentChurnRederivesAndCountsRebuild) {
  FakeDag dag;
  TunnelManager mgr(dag.env());
  mgr.refresh(NodeId{6}, SimTime{0});
  EXPECT_EQ(mgr.rebuilds(), 0u);
  dag.best[4] = NodeId{8};  // 4 re-parents under the spare relay
  const TunnelPair& pair = mgr.refresh(NodeId{6}, SimTime{1000});
  EXPECT_EQ(pair.primary.hops,
            (std::vector<NodeId>{NodeId{0}, NodeId{8}, NodeId{4}, NodeId{6}}));
  EXPECT_EQ(mgr.rebuilds(), 1u);
}

TEST(TunnelManagerTest, RepairTimingSpansOutageWindow) {
  FakeDag dag;
  TunnelManager mgr(dag.env());
  mgr.refresh(NodeId{6}, SimTime{0});
  // Partition the destination: both exits die.
  dag.up[4] = false;
  dag.up[5] = false;
  mgr.maintain(SimTime{2'000'000});  // outage observed at t = 2 s
  EXPECT_TRUE(mgr.repair_times_s().empty());
  dag.up[4] = true;
  mgr.maintain(SimTime{7'000'000});  // repaired at t = 7 s
  ASSERT_EQ(mgr.repair_times_s().size(), 1u);
  EXPECT_DOUBLE_EQ(mgr.repair_times_s()[0], 5.0);
}

// --- DuplicateFilter ---

TEST(DuplicateFilterTest, SuppressesSecondCopyEitherOrder) {
  // Two copies of the same (flow, seq) arriving over the two tunnels must
  // collapse to one delivery no matter which tunnel wins the race.
  DuplicateFilter via_primary_first;
  EXPECT_FALSE(via_primary_first.seen_or_insert(FlowId{7}, 42));  // deliver
  EXPECT_TRUE(via_primary_first.seen_or_insert(FlowId{7}, 42));   // suppress

  DuplicateFilter via_backup_first;
  EXPECT_FALSE(via_backup_first.seen_or_insert(FlowId{7}, 42));
  EXPECT_TRUE(via_backup_first.seen_or_insert(FlowId{7}, 42));
}

TEST(DuplicateFilterTest, DistinctFlowsAndSeqsPassThrough) {
  DuplicateFilter filter;
  EXPECT_FALSE(filter.seen_or_insert(FlowId{7}, 42));
  EXPECT_FALSE(filter.seen_or_insert(FlowId{7}, 43));
  EXPECT_FALSE(filter.seen_or_insert(FlowId{8}, 42));
  EXPECT_TRUE(filter.seen_or_insert(FlowId{7}, 42));
}

TEST(DuplicateFilterTest, FifoEvictionUnderWraparound) {
  DuplicateFilter filter;
  const auto cap = static_cast<std::uint32_t>(filter.capacity());
  for (std::uint32_t s = 0; s < cap; ++s) {
    EXPECT_FALSE(filter.seen_or_insert(FlowId{1}, s));
  }
  // Ring full: everything inserted is still seen.
  EXPECT_TRUE(filter.seen_or_insert(FlowId{1}, 0));
  EXPECT_TRUE(filter.seen_or_insert(FlowId{1}, cap - 1));
  // One more distinct key evicts exactly the oldest entry (seq 0)...
  EXPECT_FALSE(filter.seen_or_insert(FlowId{1}, cap));
  EXPECT_FALSE(filter.seen_or_insert(FlowId{1}, 0));  // forgotten again
  // ...and re-inserting it evicted the then-oldest (seq 1), while younger
  // entries survive.
  EXPECT_FALSE(filter.seen_or_insert(FlowId{1}, 1));
  EXPECT_TRUE(filter.seen_or_insert(FlowId{1}, 3));
}

TEST(DuplicateFilterTest, ClearDropsVolatileState) {
  DuplicateFilter filter;
  EXPECT_FALSE(filter.seen_or_insert(FlowId{7}, 42));
  filter.clear();  // power cycle
  EXPECT_FALSE(filter.seen_or_insert(FlowId{7}, 42));
}

// --- replication conflict-freedom (Eq. 4 for tunnel ladders) ---

TEST(TunnelConflictTest, DisjointDerivedPairIsConflictFree) {
  FakeDag dag;
  TunnelManager mgr(dag.env());
  const TunnelPair pair = mgr.derive(NodeId{6});
  ASSERT_TRUE(pair.disjoint);
  const DigsScheduler sched{SchedulerConfig{}};
  EXPECT_TRUE(tunnel_pair_conflict_free(pair, sched, FakeDag::kAps));
}

TEST(TunnelConflictTest, HoldsThroughSlotPermutation) {
  FakeDag dag;
  TunnelManager mgr(dag.env());
  const TunnelPair pair = mgr.derive(NodeId{6});
  const DigsScheduler sched{SchedulerConfig{}};
  const std::size_t len = sched.config().app_slotframe_len;

  std::vector<std::uint16_t> identity(len);
  std::iota(identity.begin(), identity.end(), std::uint16_t{0});
  EXPECT_TRUE(
      tunnel_pair_conflict_free(pair, sched, FakeDag::kAps, identity));

  // Any bijection preserves slot-offset distinctness — rotate by 17.
  std::vector<std::uint16_t> rotated(len);
  for (std::size_t s = 0; s < len; ++s) {
    rotated[s] = static_cast<std::uint16_t>((s + 17) % len);
  }
  EXPECT_TRUE(tunnel_pair_conflict_free(pair, sched, FakeDag::kAps, rotated));
}

TEST(TunnelConflictTest, SameRoleSameChildDifferentTxIsCaught) {
  // Crafted violation: both copies reach child 9 via a best-parent-role
  // final hop from DIFFERENT relays. Same child + same role means the same
  // ladder slots and channel — a true replication self-collision.
  TunnelPair pair;
  pair.primary.hops = {NodeId{0}, NodeId{4}, NodeId{9}};
  pair.primary.backup_edge = {0, 0};
  pair.backup.hops = {NodeId{1}, NodeId{7}, NodeId{9}};
  pair.backup.backup_edge = {0, 0};
  pair.disjoint = true;
  const DigsScheduler sched{SchedulerConfig{}};
  EXPECT_FALSE(tunnel_pair_conflict_free(pair, sched, 2));
  // The role-keyed ladders are exactly what legalizes it: flip the backup's
  // final hop to the second-best-parent role and the collision vanishes.
  pair.backup.backup_edge = {0, 1};
  EXPECT_TRUE(tunnel_pair_conflict_free(pair, sched, 2));
}

TEST(TunnelConflictTest, FullySharedPathIsExemptSharedEdges) {
  // A degenerate non-disjoint pair whose backup IS the primary: every cell
  // is claimed by the same transmitter, so nothing self-collides.
  TunnelPair pair;
  pair.primary.hops = {NodeId{0}, NodeId{4}, NodeId{9}};
  pair.primary.backup_edge = {0, 0};
  pair.backup = pair.primary;
  pair.disjoint = false;
  const DigsScheduler sched{SchedulerConfig{}};
  EXPECT_TRUE(tunnel_pair_conflict_free(pair, sched, 2));
}

// --- scheduler: tunnel cell ladders ---

TEST(TunnelSchedulerTest, RoleKeyedTxCellsPerChild) {
  SchedulerConfig config;
  config.enable_tunnels = true;
  DigsScheduler scheduler(config);

  Schedule schedule;
  // Child 7 sees us as best parent, child 8 as second-best.
  std::vector<ChildEntry> children{ChildEntry{NodeId{7}, true, {}},
                                   ChildEntry{NodeId{8}, false, {}}};
  RoutingView view;
  view.id = NodeId{4};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.children = children;
  scheduler.rebuild(schedule, view);

  int primary_cells = 0;
  int backup_cells = 0;
  for (const Cell& cell :
       schedule.slotframe(TrafficClass::kApplication)->cells) {
    // Node 4 is itself a field device, so it also listens on its own
    // tunnel RX ladders; only its per-child TX cells are under test here.
    if (!cell.tunnel || cell.option != CellOption::kTx) continue;
    EXPECT_TRUE(cell.downlink);  // tunnel cells are downlink cells
    const bool backup_role = cell.peer == NodeId{8};
    const NodeId child = backup_role ? NodeId{8} : NodeId{7};
    EXPECT_EQ(cell.slot_offset,
              scheduler.tunnel_slot(child, 2, cell.attempt, backup_role));
    EXPECT_EQ(cell.channel_offset,
              DigsScheduler::tunnel_channel(child, cell.attempt, backup_role));
    (backup_role ? backup_cells : primary_cells) += 1;
  }
  EXPECT_EQ(primary_cells, config.attempts);
  EXPECT_EQ(backup_cells, config.attempts);
}

TEST(TunnelSchedulerTest, DeviceListensOnBothParentLadders) {
  SchedulerConfig config;
  config.enable_tunnels = true;
  DigsScheduler scheduler(config);

  Schedule schedule;
  RoutingView view;
  view.id = NodeId{7};
  view.num_access_points = 2;
  view.best_parent = NodeId{4};
  view.second_best_parent = NodeId{5};
  scheduler.rebuild(schedule, view);

  int rx_cells = 0;
  for (const Cell& cell :
       schedule.slotframe(TrafficClass::kApplication)->cells) {
    if (!cell.tunnel) continue;
    ASSERT_EQ(cell.option, CellOption::kRx);
    ++rx_cells;
  }
  // attempts cells on the best-parent ladder + attempts on the second-best.
  EXPECT_EQ(rx_cells, 2 * config.attempts);
}

TEST(TunnelSchedulerTest, NoTunnelCellsWhenDisabled) {
  DigsScheduler scheduler{SchedulerConfig{}};
  Schedule schedule;
  std::vector<ChildEntry> children{ChildEntry{NodeId{7}, true, {}}};
  RoutingView view;
  view.id = NodeId{4};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.children = children;
  view.second_best_parent = NodeId{1};
  scheduler.rebuild(schedule, view);
  for (const Cell& cell :
       schedule.slotframe(TrafficClass::kApplication)->cells) {
    EXPECT_FALSE(cell.tunnel);
  }
}

// --- end to end ---

TestbedLayout tunnel_layout() {
  TestbedLayout layout;
  layout.name = "tunnel-10";
  layout.num_access_points = 2;
  layout.positions = {
      {12.0, 10.0, 0.0}, {24.0, 10.0, 0.0},  // APs
      {10.0, 5.0, 0.0},  {10.0, 15.0, 0.0}, {17.0, 8.0, 0.0},
      {17.0, 14.0, 0.0}, {24.0, 6.0, 0.0},  {30.0, 10.0, 0.0},
      {14.0, 11.0, 0.0}, {27.0, 12.0, 0.0},
  };
  return layout;
}

NetworkConfig tunnel_net_config(std::uint64_t seed) {
  NetworkConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = seed;
  config.node = ExperimentRunner::default_node_config();
  config.node.enable_downlink = true;
  config.node.enable_tunnels = true;
  config.node.mac.tx_power_dbm = 0.0;
  config.medium.propagation.path_loss_exponent = 3.8;
  return config;
}

TEST(TunnelEndToEndTest, ReplicatedDeliveryWithDuplicateSuppression) {
  NetworkConfig config = tunnel_net_config(41);
  config.monitor_invariants = true;
  Network net(config, tunnel_layout().positions);

  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{0};
  flow.downlink_dest = NodeId{7};
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(180));
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(330)));

  EXPECT_GT(net.stats().pdr(FlowId{0},
                            SimTime{0} + seconds(static_cast<std::int64_t>(185))),
            0.85);

  ASSERT_NE(net.tunnel_manager(), nullptr);
  const TunnelPair* pair = net.tunnel_manager()->pair(NodeId{7});
  ASSERT_NE(pair, nullptr);
  ASSERT_TRUE(pair->valid());
  if (pair->replicated()) {
    // Both copies routinely arrive on a clean channel; the egress must have
    // swallowed the redundant ones (FlowStats sees one delivery per seq by
    // construction — this checks the forwarding plane did the dedup too).
    EXPECT_GT(net.duplicates_suppressed(), 0u);
    EXPECT_LE(net.replication_losses(), net.duplicates_suppressed());
  } else {
    EXPECT_GT(net.single_path_fallbacks(), 0u);
  }

  // The tunnel invariants held the whole run.
  const NetworkInvariantMonitor* monitor = net.invariant_monitor();
  ASSERT_NE(monitor, nullptr);
  EXPECT_EQ(monitor->count(InvariantKind::kTunnelLoop), 0u);
  EXPECT_EQ(monitor->count(InvariantKind::kTunnelDisjoint), 0u);
  EXPECT_EQ(monitor->count(InvariantKind::kTunnelConflict), 0u);
  EXPECT_EQ(monitor->count(InvariantKind::kScheduleConflict), 0u);
}

TEST(TunnelEndToEndTest, ReplicationOffSendsSinglePrimaryCopy) {
  NetworkConfig config = tunnel_net_config(42);
  config.tunnel_replication = false;
  Network net(config, tunnel_layout().positions);

  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{0};
  flow.downlink_dest = NodeId{7};
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(180));
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(330)));

  EXPECT_GT(net.stats().pdr(FlowId{0},
                            SimTime{0} + seconds(static_cast<std::int64_t>(185))),
            0.85);
  // One copy per packet: nothing to suppress, nothing to win.
  EXPECT_EQ(net.duplicates_suppressed(), 0u);
  EXPECT_EQ(net.replication_wins(), 0u);
  EXPECT_EQ(net.replication_losses(), 0u);
}

}  // namespace
}  // namespace digs
