// Tests for the live centralized WirelessHART suite: the Network Manager
// computes and installs graph routes globally, reacts to dynamics only
// after the Fig. 3 reaction time, and devices operate on stale routes in
// between.
#include <gtest/gtest.h>

#include "core/network.h"
#include "routing/centralized_routing.h"
#include "testbed/experiment.h"

namespace digs {
namespace {

TestbedLayout small_layout() {
  TestbedLayout layout;
  layout.name = "wh-10";
  layout.num_access_points = 2;
  layout.positions = {
      {12.0, 10.0, 0.0}, {24.0, 10.0, 0.0},  // APs
      {10.0, 5.0, 0.0},  {10.0, 15.0, 0.0}, {17.0, 8.0, 0.0},
      {17.0, 14.0, 0.0}, {24.0, 6.0, 0.0},  {30.0, 10.0, 0.0},
      {14.0, 11.0, 0.0}, {27.0, 12.0, 0.0},
  };
  return layout;
}

NetworkConfig wh_config(std::uint64_t seed = 9) {
  NetworkConfig config;
  config.suite = ProtocolSuite::kWirelessHart;
  config.seed = seed;
  config.node = ExperimentRunner::default_node_config();
  config.node.mac.tx_power_dbm = 0.0;
  config.medium.propagation.path_loss_exponent = 3.8;
  return config;
}

TEST(WirelessHartTest, ManagerInstallsRoutesAfterProvisioning) {
  Network net(wh_config(), small_layout().positions);
  net.start();
  ASSERT_NE(net.manager(), nullptr);
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(30)));
  EXPECT_EQ(net.manager()->installs(), 0u);  // still provisioning
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(90)));
  EXPECT_EQ(net.manager()->installs(), 1u);
  for (std::uint16_t i = 2; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(NodeId{i}).routing().joined()) << "node " << i;
  }
}

TEST(WirelessHartTest, CentrallyRoutedNetworkDelivers) {
  Network net(wh_config(), small_layout().positions);
  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{7};
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(150));
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(300)));
  EXPECT_GT(net.stats().pdr(FlowId{0},
                            SimTime{0} + seconds(static_cast<std::int64_t>(155)),
                            SimTime{0} + seconds(static_cast<std::int64_t>(280))),
            0.95);
}

TEST(WirelessHartTest, ReactionTimeMatchesFig3Scale) {
  Network net(wh_config(), testbed_a().positions);
  net.start();
  // 50 alive nodes: the fitted model predicts the paper's ~506 s.
  const double reaction = net.manager()->reaction_time().seconds();
  EXPECT_GT(reaction, 300.0);
  EXPECT_LT(reaction, 900.0);
}

TEST(WirelessHartTest, DynamicsCoalesceIntoOnePendingUpdate) {
  Network net(wh_config(), small_layout().positions);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(90)));
  ASSERT_EQ(net.manager()->installs(), 1u);
  net.set_node_alive(NodeId{5}, false);
  net.set_node_alive(NodeId{6}, false);  // second event coalesces
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(3000)));
  EXPECT_EQ(net.manager()->installs(), 2u);
}

TEST(WirelessHartTest, StaleRoutesUntilManagerReacts) {
  // Testbed A is genuinely multi-hop, so some device has a field-device
  // parent to lose.
  NetworkConfig config = wh_config();
  config.node.mac.tx_power_dbm = testbed_a().tx_power_dbm;
  Network net(config, testbed_a().positions);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(90)));
  // Find a device whose best parent is a field device and kill the parent.
  NodeId child = kNoNode;
  NodeId victim = kNoNode;
  for (std::uint16_t i = 2; i < net.size(); ++i) {
    const NodeId bp = net.node(NodeId{i}).routing().best_parent();
    if (bp.valid() && bp.value >= 2) {
      child = NodeId{i};
      victim = bp;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  net.set_node_alive(victim, false);
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(120)));
  // Long before the reaction time elapses: the stale assignment persists.
  EXPECT_EQ(net.node(child).routing().best_parent(), victim);
  EXPECT_EQ(net.manager()->installs(), 1u);
}

TEST(WirelessHartTest, IdealizedManagerReactsInstantly) {
  NetworkConfig config = wh_config();
  config.manager.model_reaction_time = false;  // ablation lower bound
  Network net(config, small_layout().positions);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(90)));
  net.set_node_alive(NodeId{5}, false);
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(130)));
  EXPECT_EQ(net.manager()->installs(), 2u);  // detection delay only
}

TEST(WirelessHartTest, CentralizedRoutingIsPassive) {
  RoutingProtocol::Env env;
  int sent = 0;
  env.send_routing = [&sent](const Frame&) { ++sent; };
  env.on_topology_changed = [](SimTime) {};
  CentralizedRouting routing(NodeId{5}, false, env);
  routing.start(SimTime{0});
  EXPECT_FALSE(routing.joined());
  routing.handle_frame(
      make_frame(FrameType::kJoinIn, NodeId{0}, kNoNode, JoinInPayload{}),
      -60.0, SimTime{0});
  EXPECT_FALSE(routing.joined());  // ignores distributed signalling
  EXPECT_EQ(sent, 0);              // and never transmits any

  routing.set_assignment(NodeId{0}, NodeId{1}, 2,
                         {ChildEntry{NodeId{9}, true, {}}}, SimTime{10});
  EXPECT_TRUE(routing.joined());
  EXPECT_EQ(routing.best_parent(), NodeId{0});
  EXPECT_EQ(routing.second_best_parent(), NodeId{1});
  EXPECT_EQ(routing.rank(), 2);
  EXPECT_EQ(routing.children().size(), 1u);
}

TEST(WirelessHartTest, NoManagerForDistributedSuites) {
  NetworkConfig config = wh_config();
  config.suite = ProtocolSuite::kDigs;
  Network net(config, small_layout().positions);
  EXPECT_EQ(net.manager(), nullptr);
}

}  // namespace
}  // namespace digs
